package bbst

import (
	"sort"

	"repro/internal/geom"
)

// Fractional cascading (Chazelle & Guibas), the optional optimization
// the paper cites in Section IV-D and Lemma 4: it replaces the
// per-node binary searches of a corner query with O(1) bridge lookups,
// reducing case-3 cost from O(log^2 m) to O(log m).
//
// Every node's subtree array (one per y-order) is augmented with
// bridge indices into the corresponding arrays of its children and
// into its own b-list: bridge[i] is the first position in the target
// array whose y key is >= the source's y key at position i (with a
// sentinel at i == len(source)). Because a child's array is a
// value-subset of its parent's, the first position matching a query
// threshold in the child equals the bridge of the first matching
// position in the parent — so one binary search at the root seeds the
// whole traversal.

// bridges holds the cascade indices of one node for one y-order.
type bridges struct {
	left  []int32 // into left child's subtree array
	right []int32 // into right child's subtree array
	own   []int32 // into the node's own b-list
}

// fcNode carries the two per-order bridge sets of one node.
type fcNode struct {
	min bridges // for the MinY-sorted arrays
	max bridges // for the MaxY-sorted arrays
}

// EnableFractionalCascading builds the bridge structures for both
// trees. Idempotent; costs O(total array length) time and memory.
func (p *Pair) EnableFractionalCascading() {
	if p.fcOn || len(p.buckets) == 0 {
		return
	}
	p.fcOn = true
	p.buildFC(p.tMin.root)
	p.buildFC(p.tMax.root)
}

// HasFractionalCascading reports whether bridges are built.
func (p *Pair) HasFractionalCascading() bool { return p.fcOn }

// buildFC computes the bridges of the subtree rooted at u.
func (p *Pair) buildFC(u *node) {
	if u == nil {
		return
	}
	fn := &fcNode{}
	minKey := func(id int32) float64 { return p.buckets[id].MinY }
	maxKey := func(id int32) float64 { return p.buckets[id].MaxY }
	var leftMin, leftMax, rightMin, rightMax []int32
	if u.left != nil {
		leftMin, leftMax = u.left.aMinY, u.left.aMaxY
	}
	if u.right != nil {
		rightMin, rightMax = u.right.aMinY, u.right.aMaxY
	}
	fn.min.left = buildBridge(u.aMinY, leftMin, minKey)
	fn.min.right = buildBridge(u.aMinY, rightMin, minKey)
	fn.min.own = buildBridge(u.aMinY, u.bMinY, minKey)
	fn.max.left = buildBridge(u.aMaxY, leftMax, maxKey)
	fn.max.right = buildBridge(u.aMaxY, rightMax, maxKey)
	fn.max.own = buildBridge(u.aMaxY, u.bMaxY, maxKey)
	u.fc = fn
	p.buildFC(u.left)
	p.buildFC(u.right)
}

// buildBridge computes, for every position i of src (plus a sentinel),
// the first position j of dst with key(dst[j]) >= key(src[i]). Both
// arrays are ascending in key, so a single merge pass suffices.
func buildBridge(src, dst []int32, key func(int32) float64) []int32 {
	out := make([]int32, len(src)+1)
	j := 0
	for i, id := range src {
		for j < len(dst) && key(dst[j]) < key(id) {
			j++
		}
		out[i] = int32(j)
	}
	out[len(src)] = int32(len(dst))
	return out
}

// decomposeFC is the cascaded version of decompose: identical pieces
// and total, but only the root lookup is a binary search.
func (p *Pair) decomposeFC(c Corner, w geom.Rect, dst []piece) ([]piece, int) {
	qx, qy, xGE, yGE := cornerQuery(c, w)
	var u *node
	if xGE {
		u = p.tMax.root
	} else {
		u = p.tMin.root
	}
	if u == nil {
		return dst, 0
	}

	// One binary search at the root for the y threshold position:
	// for yGE (suffix of the MaxY order) the position of the first
	// element with MaxY >= qy; for yLE (prefix of the MinY order) the
	// position of the first element with MinY > qy.
	arr := func(n *node) []int32 {
		if yGE {
			return n.aMaxY
		}
		return n.aMinY
	}
	blist := func(n *node) []int32 {
		if yGE {
			return n.bMaxY
		}
		return n.bMinY
	}
	br := func(n *node) bridges {
		if yGE {
			return n.fc.max
		}
		return n.fc.min
	}
	rootArr := arr(u)
	var pos int32
	if yGE {
		pos = int32(sort.Search(len(rootArr), func(i int) bool {
			return p.buckets[rootArr[i]].MaxY >= qy
		}))
	} else {
		pos = int32(sort.Search(len(rootArr), func(i int) bool {
			return p.buckets[rootArr[i]].MinY > qy
		}))
	}

	total := 0
	// addA emits the matching region of node n's subtree array given
	// the cascaded position q (first >= / first > position).
	addA := func(n *node, q int32) {
		ids := arr(n)
		var lo, hi int32
		if yGE {
			lo, hi = q, int32(len(ids))
		} else {
			lo, hi = 0, q
		}
		if lo < hi {
			dst = append(dst, piece{ids: ids, lo: lo, hi: hi})
			total += int(hi - lo)
		}
	}
	addB := func(n *node, q int32) {
		ids := blist(n)
		var lo, hi int32
		if yGE {
			lo, hi = q, int32(len(ids))
		} else {
			lo, hi = 0, q
		}
		if lo < hi {
			dst = append(dst, piece{ids: ids, lo: lo, hi: hi})
			total += int(hi - lo)
		}
	}

	for u != nil {
		b := br(u)
		if xGE {
			if u.x < qx {
				if u.right == nil {
					break
				}
				pos = b.right[pos]
				u = u.right
				continue
			}
			addB(u, b.own[pos])
			if u.right != nil {
				addA(u.right, b.right[pos])
			}
			if u.x == qx || u.left == nil {
				break
			}
			pos = b.left[pos]
			u = u.left
		} else {
			if u.x > qx {
				if u.left == nil {
					break
				}
				pos = b.left[pos]
				u = u.left
				continue
			}
			addB(u, b.own[pos])
			if u.left != nil {
				addA(u.left, b.left[pos])
			}
			if u.x == qx || u.right == nil {
				break
			}
			pos = b.right[pos]
			u = u.right
		}
	}
	return dst, total
}

// SizeBytesFC reports the extra footprint of the bridge structures
// (0 when fractional cascading is disabled).
func (p *Pair) SizeBytesFC() int {
	total := 0
	var walk func(u *node)
	walk = func(u *node) {
		if u == nil || u.fc == nil {
			return
		}
		fn := u.fc
		total += 4 * (len(fn.min.left) + len(fn.min.right) + len(fn.min.own) +
			len(fn.max.left) + len(fn.max.right) + len(fn.max.own))
		walk(u.left)
		walk(u.right)
	}
	walk(p.tMin.root)
	walk(p.tMax.root)
	return total
}
