package bbst

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

// sortedPoints generates n points in [0,extent)^2 sorted by x.
func sortedPoints(r *rng.RNG, n int, extent float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: int32(i)}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// bruteBucketCount counts buckets matching the corner constraint
// directly from the summaries.
func bruteBucketCount(p *Pair, c Corner, w geom.Rect) int {
	count := 0
	for _, b := range p.Buckets() {
		var ok bool
		switch c {
		case SouthWest:
			ok = b.MaxX >= w.XMin && b.MaxY >= w.YMin
		case NorthWest:
			ok = b.MaxX >= w.XMin && b.MinY <= w.YMax
		case SouthEast:
			ok = b.MinX <= w.XMax && b.MaxY >= w.YMin
		case NorthEast:
			ok = b.MinX <= w.XMax && b.MinY <= w.YMax
		}
		if ok {
			count++
		}
	}
	return count
}

// cornerPredicate returns the 2-sided point constraint for a corner.
func cornerPredicate(c Corner, w geom.Rect) func(geom.Point) bool {
	switch c {
	case SouthWest:
		return func(p geom.Point) bool { return p.X >= w.XMin && p.Y >= w.YMin }
	case NorthWest:
		return func(p geom.Point) bool { return p.X >= w.XMin && p.Y <= w.YMax }
	case SouthEast:
		return func(p geom.Point) bool { return p.X <= w.XMax && p.Y >= w.YMin }
	case NorthEast:
		return func(p geom.Point) bool { return p.X <= w.XMax && p.Y <= w.YMax }
	}
	panic("bad corner")
}

var allCorners = []Corner{SouthWest, NorthWest, SouthEast, NorthEast}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	unsorted := []geom.Point{{X: 2}, {X: 1}}
	if _, err := Build(unsorted, 2); err == nil {
		t.Error("unsorted input should fail")
	}
}

func TestBucketCap(t *testing.T) {
	tests := []struct {
		m, want int
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {9, 4}, {1 << 20, 20},
	}
	for _, tc := range tests {
		if got := BucketCap(tc.m); got != tc.want {
			t.Errorf("BucketCap(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
}

func TestEmptyPair(t *testing.T) {
	p, err := Build(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBuckets() != 0 {
		t.Fatal("empty pair should have no buckets")
	}
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 1, YMax: 1}
	for _, c := range allCorners {
		if got := p.CountBuckets(c, w, nil); got != 0 {
			t.Errorf("%v count = %d on empty pair", c, got)
		}
		if _, ok := p.SampleSlot(c, w, rng.New(1), nil); ok {
			t.Errorf("%v sample should fail on empty pair", c)
		}
	}
}

func TestBucketPartition(t *testing.T) {
	r := rng.New(1)
	pts := sortedPoints(r, 103, 100) // deliberately not a multiple of cap
	p, err := Build(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.NumBuckets(), 11; got != want {
		t.Fatalf("NumBuckets = %d, want %d", got, want)
	}
	covered := 0
	for i, b := range p.Buckets() {
		if b.Len() <= 0 || b.Len() > p.Cap() {
			t.Fatalf("bucket %d has invalid length %d", i, b.Len())
		}
		covered += b.Len()
		for _, pt := range b.Pts {
			if pt.X < b.MinX || pt.X > b.MaxX || pt.Y < b.MinY || pt.Y > b.MaxY {
				t.Fatalf("bucket %d summary does not cover point %v", i, pt)
			}
		}
		// Summaries must be tight.
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, pt := range b.Pts {
			minX = math.Min(minX, pt.X)
			maxX = math.Max(maxX, pt.X)
			minY = math.Min(minY, pt.Y)
			maxY = math.Max(maxY, pt.Y)
		}
		if b.MinX != minX || b.MaxX != maxX || b.MinY != minY || b.MaxY != maxY {
			t.Fatalf("bucket %d summary not tight", i)
		}
	}
	if covered != len(pts) {
		t.Fatalf("buckets cover %d points, want %d", covered, len(pts))
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 5, 17, 200, 1000} {
		pts := sortedPoints(r, n, 50)
		p, err := Build(pts, BucketCap(n))
		if err != nil {
			t.Fatal(err)
		}
		var s Scratch
		for trial := 0; trial < 200; trial++ {
			q := geom.Point{X: r.Range(-5, 55), Y: r.Range(-5, 55)}
			w := geom.Window(q, r.Range(0.1, 20))
			for _, c := range allCorners {
				got := p.CountBucketsS(c, w, &s)
				want := bruteBucketCount(p, c, w)
				if got != want {
					t.Fatalf("n=%d %v count = %d, want %d (w=%v)", n, c, got, want, w)
				}
			}
		}
	}
}

func TestDuplicateXCoordinates(t *testing.T) {
	// The b-lists exist precisely so that equal keys keep the tree
	// balanced; stress with many duplicates.
	r := rng.New(3)
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i % 5), Y: r.Range(0, 100), ID: int32(i)}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	p, err := Build(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		w := geom.Window(geom.Point{X: r.Range(-1, 6), Y: r.Range(0, 100)}, r.Range(0.1, 50))
		for _, c := range allCorners {
			got := p.CountBuckets(c, w, nil)
			want := bruteBucketCount(p, c, w)
			if got != want {
				t.Fatalf("%v count = %d, want %d", c, got, want)
			}
		}
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Point{X: 3, Y: 3, ID: int32(i)}
	}
	p, err := Build(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	for _, c := range allCorners {
		if got, want := p.CountBuckets(c, w, nil), 16; got != want {
			t.Fatalf("%v count = %d, want %d", c, got, want)
		}
	}
	wMiss := geom.Rect{XMin: 4, YMin: 4, XMax: 10, YMax: 10}
	if got := p.CountBuckets(SouthWest, wMiss, nil); got != 0 {
		t.Fatalf("miss count = %d, want 0", got)
	}
}

// TestMuUpperBound verifies the two sides of Lemma 5: µ is an upper
// bound of the exact corner count, and µ <= cap * (exact/1 + 1)-ish;
// we check the exact form µ <= cap * (exactBuckets) where every
// matched bucket except at most... — we check the provable invariant
// exact <= µ.
func TestMuUpperBound(t *testing.T) {
	r := rng.New(4)
	pts := sortedPoints(r, 500, 30)
	p, err := Build(pts, BucketCap(500))
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for trial := 0; trial < 500; trial++ {
		q := geom.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}
		w := geom.Window(q, r.Range(0.1, 10))
		for _, c := range allCorners {
			mu := p.MuS(c, w, &s)
			pred := cornerPredicate(c, w)
			exact := 0
			for _, pt := range pts {
				if pred(pt) {
					exact++
				}
			}
			if exact > mu {
				t.Fatalf("%v exact %d > µ %d", c, exact, mu)
			}
		}
	}
}

func TestBalanceAndNodeCount(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{10, 100, 1000, 5000} {
		pts := sortedPoints(r, n, 1000)
		cap := BucketCap(n)
		p, err := Build(pts, cap)
		if err != nil {
			t.Fatal(err)
		}
		nb := p.NumBuckets()
		// Height bound: median splits halve the multiset, so height
		// <= log2(nb) + 2.
		maxH := int(math.Ceil(math.Log2(float64(nb)))) + 2
		if h := p.Height(); h > maxH {
			t.Errorf("n=%d height %d exceeds bound %d (buckets %d)", n, h, maxH, nb)
		}
		// Both trees have at most one node per distinct key <= nb.
		if nodes := p.NumNodes(); nodes > 2*nb {
			t.Errorf("n=%d node count %d exceeds 2x buckets %d", n, nodes, nb)
		}
	}
}

// TestSamplingUniformOverSlots verifies that accepted samples are
// uniform over the points satisfying the corner constraint: every
// qualifying point occupies exactly one slot, so after rejecting empty
// slots the conditional distribution over qualifying points is uniform.
func TestSamplingUniformOverSlots(t *testing.T) {
	r := rng.New(6)
	pts := sortedPoints(r, 120, 20)
	p, err := Build(pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{XMin: 5, YMin: 5, XMax: 40, YMax: 40} // SW corner query at (5,5)
	pred := cornerPredicate(SouthWest, w)
	qualifying := map[int32]bool{}
	for _, pt := range pts {
		if pred(pt) {
			qualifying[pt.ID] = true
		}
	}
	if len(qualifying) < 10 {
		t.Fatalf("test setup too sparse: %d qualifying", len(qualifying))
	}
	var s Scratch
	counts := map[int32]int{}
	const draws = 300000
	accepted := 0
	for i := 0; i < draws; i++ {
		pt, ok := p.SampleSlotS(SouthWest, w, r, &s)
		if !ok {
			continue
		}
		if !pred(pt) {
			// Slot sampling may return a point outside the constraint
			// (bucket summary matched but the point does not);
			// callers reject it. Count as rejection here.
			continue
		}
		counts[pt.ID]++
		accepted++
	}
	if accepted < draws/4 {
		t.Fatalf("acceptance too low: %d/%d", accepted, draws)
	}
	expected := float64(accepted) / float64(len(qualifying))
	chi2 := 0.0
	for id := range qualifying {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	// dof = len(qualifying)-1; a generous 2x-dof bound catches real
	// skew while tolerating statistical noise.
	if dof := float64(len(qualifying) - 1); chi2 > 2*dof+50 {
		t.Fatalf("sample distribution skewed: chi2 = %g (dof %g)", chi2, dof)
	}
	for id := range counts {
		if !qualifying[id] {
			t.Fatalf("sampled non-qualifying point %d", id)
		}
	}
}

func TestSampleSlotNeverReturnsWrongRegionAfterFilter(t *testing.T) {
	r := rng.New(7)
	pts := sortedPoints(r, 200, 10)
	p, err := Build(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{X: r.Range(0, 10), Y: r.Range(0, 10)}
		w := geom.Window(q, 2)
		for _, c := range allCorners {
			pt, ok := p.SampleSlot(c, w, r, nil)
			if !ok {
				continue
			}
			// The returned point must come from a matched bucket;
			// its bucket summary must satisfy the constraint.
			found := false
			for _, b := range p.Buckets() {
				if pt.ID >= 0 {
					for _, bp := range b.Pts {
						if bp.ID == pt.ID {
							found = true
						}
					}
				}
				if found {
					break
				}
			}
			if !found {
				t.Fatalf("sampled point %v not found in any bucket", pt)
			}
		}
	}
}

func TestQuickCountInvariant(t *testing.T) {
	f := func(seed uint64, qxRaw, qyRaw, lRaw float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(300)
		pts := sortedPoints(rr, n, 40)
		p, err := Build(pts, BucketCap(n))
		if err != nil {
			return false
		}
		q := geom.Point{
			X: math.Abs(math.Mod(qxRaw, 40)),
			Y: math.Abs(math.Mod(qyRaw, 40)),
		}
		w := geom.Window(q, math.Abs(math.Mod(lRaw, 15))+0.01)
		for _, c := range allCorners {
			if p.CountBuckets(c, w, nil) != bruteBucketCount(p, c, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesLinear(t *testing.T) {
	r := rng.New(8)
	n := 1 << 12
	pts := sortedPoints(r, n, 100)
	p, err := Build(pts, BucketCap(n))
	if err != nil {
		t.Fatal(err)
	}
	size := p.SizeBytes()
	if size <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	// Lemma 2: O(N) space. Allow a generous constant: 64 bytes/point.
	if size > 64*n {
		t.Fatalf("SizeBytes = %d exceeds linear bound %d", size, 64*n)
	}
}

func BenchmarkCount(b *testing.B) {
	r := rng.New(9)
	n := 1 << 14
	pts := sortedPoints(r, n, 1000)
	p, _ := Build(pts, BucketCap(n))
	w := geom.Window(geom.Point{X: 500, Y: 500}, 100)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CountBucketsS(SouthWest, w, &s)
	}
}

func BenchmarkSampleSlot(b *testing.B) {
	r := rng.New(10)
	n := 1 << 14
	pts := sortedPoints(r, n, 1000)
	p, _ := Build(pts, BucketCap(n))
	w := geom.Window(geom.Point{X: 500, Y: 500}, 100)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.SampleSlotS(SouthWest, w, r, &s)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(11)
	n := 1 << 14
	pts := sortedPoints(r, n, 1000)
	cap := BucketCap(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Build(pts, cap)
	}
}

// TestLemma5SharpBound checks the structural fact behind Lemma 5's
// approximation bound: buckets are consecutive x-intervals, so at most
// one matched bucket straddles the x threshold; every other matched
// bucket contains at least one point satisfying the full 2-sided
// constraint. Hence #matchedBuckets <= exact2SidedCount + 1.
func TestLemma5SharpBound(t *testing.T) {
	r := rng.New(20)
	for _, n := range []int{5, 50, 400, 2000} {
		pts := sortedPoints(r, n, 60)
		p, err := Build(pts, BucketCap(n))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			q := geom.Point{X: r.Range(-5, 65), Y: r.Range(-5, 65)}
			w := geom.Window(q, r.Range(0.1, 25))
			for _, c := range allCorners {
				matched := p.CountBuckets(c, w, nil)
				pred := cornerPredicate(c, w)
				exact := 0
				for _, pt := range pts {
					if pred(pt) {
						exact++
					}
				}
				if matched > exact+1 {
					t.Fatalf("n=%d %v: %d matched buckets but only %d matching points (w=%v)",
						n, c, matched, exact, w)
				}
			}
		}
	}
}

// TestMuImpliesNonEmptyUsually: whenever two or more buckets match,
// the corner region is provably non-empty (the Lemma 5 α >= 2 case).
func TestMuImpliesNonEmptyUsually(t *testing.T) {
	r := rng.New(21)
	pts := sortedPoints(r, 1000, 40)
	p, err := Build(pts, BucketCap(1000))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 40), Y: r.Range(0, 40)}, r.Range(0.5, 15))
		for _, c := range allCorners {
			if p.CountBuckets(c, w, nil) >= 2 {
				pred := cornerPredicate(c, w)
				found := false
				for _, pt := range pts {
					if pred(pt) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v: >=2 matched buckets but empty corner region (w=%v)", c, w)
				}
			}
		}
	}
}

func TestReportBucketsMatchesCount(t *testing.T) {
	r := rng.New(25)
	pts := sortedPoints(r, 700, 40)
	p, err := Build(pts, BucketCap(700))
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for trial := 0; trial < 200; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 40), Y: r.Range(0, 40)}, r.Range(0.5, 12))
		for _, c := range allCorners {
			want := p.CountBucketsS(c, w, &s)
			got := 0
			p.ReportBuckets(c, w, &s, func(Bucket) bool { got++; return true })
			if got != want {
				t.Fatalf("%v: reported %d buckets, count says %d", c, got, want)
			}
		}
	}
}

func TestReportPointsExact(t *testing.T) {
	r := rng.New(26)
	pts := sortedPoints(r, 500, 30)
	p, err := Build(pts, BucketCap(500))
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for trial := 0; trial < 200; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}, r.Range(0.5, 10))
		for _, c := range allCorners {
			pred := cornerPredicate(c, w)
			want := map[int32]bool{}
			for _, pt := range pts {
				if pred(pt) {
					want[pt.ID] = true
				}
			}
			got := map[int32]bool{}
			p.ReportPoints(c, w, &s, func(pt geom.Point) bool {
				if got[pt.ID] {
					t.Fatalf("%v: duplicate report of %v", c, pt)
				}
				got[pt.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%v: reported %d points, want %d", c, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("%v: missing point %d", c, id)
				}
			}
		}
	}
}

func TestReportEarlyStops(t *testing.T) {
	r := rng.New(27)
	pts := sortedPoints(r, 300, 10)
	p, err := Build(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 20, YMax: 20}
	seen := 0
	p.ReportPoints(SouthWest, w, nil, func(geom.Point) bool {
		seen++
		return seen < 4
	})
	if seen != 4 {
		t.Fatalf("early stop saw %d points", seen)
	}
	seenB := 0
	p.ReportBuckets(SouthWest, w, nil, func(Bucket) bool {
		seenB++
		return seenB < 2
	})
	if seenB != 2 {
		t.Fatalf("bucket early stop saw %d", seenB)
	}
}
