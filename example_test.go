package srj_test

import (
	"context"
	"fmt"

	srj "repro"
)

// ExampleNewSampler demonstrates the core workflow: build a sampler
// over two point sets and draw uniform join samples.
func ExampleNewSampler() {
	R := []srj.Point{{X: 10, Y: 10, ID: 0}, {X: 50, Y: 50, ID: 1}}
	S := []srj.Point{{X: 12, Y: 11, ID: 0}, {X: 48, Y: 52, ID: 1}, {X: 90, Y: 90, ID: 2}}

	sampler, err := srj.NewSampler(R, S, 5, &srj.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	pairs, err := sampler.Sample(4)
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("r#%d pairs with s#%d\n", p.R.ID, p.S.ID)
	}
	// Unordered output:
	// r#0 pairs with s#0
	// r#0 pairs with s#0
	// r#1 pairs with s#1
	// r#1 pairs with s#1
}

// ExampleSampler_Next draws samples progressively (Definition 2
// allows t = ∞): stop whenever enough samples have arrived.
func ExampleSampler_Next() {
	R := srj.MustGenerate("uniform", 1000, 1)
	S := srj.MustGenerate("uniform", 1000, 2)
	sampler, err := srj.NewSampler(R, S, 500, &srj.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	seen := 0
	for seen < 100 {
		if _, err := sampler.Next(); err != nil {
			panic(err)
		}
		seen++
	}
	fmt.Println(seen, "samples drawn on demand")
	// Output: 100 samples drawn on demand
}

// ExampleEngine_Draw shows the Source API: build the structures once,
// then serve any number of requests — cancellable, optionally seeded
// for reproducibility, optionally allocation-free via Request.Into.
// A srj.Client bound to an engine key serves the identical contract
// over HTTP.
func ExampleEngine_Draw() {
	R := srj.MustGenerate("uniform", 1000, 1)
	S := srj.MustGenerate("uniform", 1000, 2)
	eng, err := srj.NewEngine(R, S, 500, &srj.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// Seeded draws are reproducible whatever traffic is interleaved.
	a, err := eng.Draw(ctx, srj.Request{T: 50, Seed: 42})
	if err != nil {
		panic(err)
	}
	if _, err := eng.Draw(ctx, srj.Request{T: 999}); err != nil { // other traffic
		panic(err)
	}
	b, err := eng.Draw(ctx, srj.Request{T: 50, Seed: 42})
	if err != nil {
		panic(err)
	}
	same := a.Count() == b.Count()
	for i := range a.Pairs {
		same = same && a.Pairs[i] == b.Pairs[i]
	}
	fmt.Println("reproducible:", same)

	// Reusing a buffer makes the steady state allocation-free.
	buf := make([]srj.Pair, 100)
	res, err := eng.Draw(ctx, srj.Request{Into: buf})
	if err != nil {
		panic(err)
	}
	fmt.Println("drawn into buffer:", res.Count())
	// Output:
	// reproducible: true
	// drawn into buffer: 100
}

// ExampleJoinSize shows exact join-size computation (plane sweep),
// useful to calibrate how many samples to request.
func ExampleJoinSize() {
	R := []srj.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}
	S := []srj.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 99, Y: 99}}
	fmt.Println(srj.JoinSize(R, S, 5))
	// Output: 3
}

// ExampleEstimateJoinSize estimates |J| from sampling statistics
// alone — no join is executed.
func ExampleEstimateJoinSize() {
	R := srj.MustGenerate("uniform", 2000, 4)
	S := srj.MustGenerate("uniform", 2000, 5)
	const l = 300
	sampler, err := srj.NewSampler(R, S, l, &srj.Options{Algorithm: srj.KDS, Seed: 6})
	if err != nil {
		panic(err)
	}
	if _, err := sampler.Sample(100); err != nil {
		panic(err)
	}
	// KDS counts exactly, so its estimate equals the true size.
	fmt.Println(srj.EstimateJoinSize(sampler) == float64(srj.JoinSize(R, S, l)))
	// Output: true
}
