package srj

// Tests of the public serving API: srj.NewServer as an embeddable
// handler, srj.NewClient against it, warmup, and error mapping.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T, opts *ServerOptions) (*Server, *Client, func()) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	return s, NewClient(ts.URL), ts.Close
}

func TestPublicServerServesBuiltinDatasets(t *testing.T) {
	s, cl, done := newTestServer(t, &ServerOptions{DatasetSize: 2000, MaxT: 10_000})
	defer done()
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	const l = 200.0
	pairs, err := cl.Sample(ctx, SampleRequest{Dataset: "uniform", L: l, Seed: 1, T: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1000 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if !Window(p.R, l).Contains(p.S) {
			t.Fatalf("invalid pair %v", p)
		}
	}
	if st := s.RegistryStats(); st.Builds != 1 || st.Entries != 1 {
		t.Fatalf("registry stats = %+v", st)
	}
	// Same key again: no rebuild.
	if _, err := cl.Sample(ctx, SampleRequest{Dataset: "uniform", L: l, Seed: 1, T: 10}); err != nil {
		t.Fatal(err)
	}
	if st := s.RegistryStats(); st.Builds != 1 || st.Hits < 1 {
		t.Fatalf("repeat request rebuilt: %+v", st)
	}
}

func TestPublicServerWarm(t *testing.T) {
	s, cl, done := newTestServer(t, &ServerOptions{DatasetSize: 2000, MaxT: 10_000})
	defer done()
	ctx := context.Background()
	key := EngineKey{Dataset: "gaussian", L: 150, Algorithm: "bbst", Seed: 3}
	if err := s.Warm(ctx, key); err != nil {
		t.Fatal(err)
	}
	if st := s.RegistryStats(); st.Builds != 1 {
		t.Fatalf("warm did not build: %+v", st)
	}
	if _, err := cl.Sample(ctx, SampleRequest{Dataset: "gaussian", L: 150, Seed: 3, T: 100}); err != nil {
		t.Fatal(err)
	}
	st := s.RegistryStats()
	if st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("warmed key was rebuilt: %+v", st)
	}
	engines := s.Engines()
	if len(engines) != 1 || engines[0].Key != key {
		t.Fatalf("engines = %+v", engines)
	}
}

func TestPublicServerErrorMapping(t *testing.T) {
	_, cl, done := newTestServer(t, &ServerOptions{DatasetSize: 500, MaxT: 1000})
	defer done()
	ctx := context.Background()
	cases := []struct {
		name   string
		req    SampleRequest
		status int
	}{
		{"unknown dataset", SampleRequest{Dataset: "atlantis", L: 100, T: 10}, 400},
		{"unknown algorithm", SampleRequest{Dataset: "uniform", L: 100, Algorithm: "magic", T: 10}, 400},
		{"bad extent", SampleRequest{Dataset: "uniform", L: -3, T: 10}, 400},
		{"over cap", SampleRequest{Dataset: "uniform", L: 100, T: 5000}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.Sample(ctx, tc.req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Status != tc.status {
				t.Fatalf("err = %v, want APIError %d", err, tc.status)
			}
		})
	}
}

// TestPublicServerDatasetMemoized: distinct keys over one dataset
// name share a single resolution — the resolver must not be re-run
// (and built-ins not regenerated) per engine build.
func TestPublicServerDatasetMemoized(t *testing.T) {
	R := MustGenerate("uniform", 600, 51)
	S := MustGenerate("uniform", 600, 52)
	resolutions := 0
	opts := &ServerOptions{
		MaxT: 10_000,
		Datasets: func(name string) ([]Point, []Point, error) {
			resolutions++
			return R, S, nil
		},
	}
	_, cl, done := newTestServer(t, opts)
	defer done()
	ctx := context.Background()
	for _, req := range []SampleRequest{
		{Dataset: "d", L: 200, Seed: 1, T: 50},
		{Dataset: "d", L: 300, Seed: 1, T: 50}, // same dataset, new key
		{Dataset: "d", L: 200, Seed: 2, T: 50}, // same dataset, new key
	} {
		if _, err := cl.Sample(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if resolutions != 1 {
		t.Fatalf("resolver ran %d times, want 1", resolutions)
	}
}

// TestDatasetMemoBounded: the memo holds at most maxCachedDatasets
// names (it lives outside the engine MemoryBudget), evicting the
// least recently used; evicted names re-resolve, errors don't stick.
func TestDatasetMemoBounded(t *testing.T) {
	counts := map[string]int{}
	resolve := memoizeDatasets(func(name string) ([]Point, []Point, error) {
		counts[name]++
		if name == "bad" {
			return nil, nil, errors.New("nope")
		}
		return []Point{{ID: 1}}, []Point{{ID: 2}}, nil
	})
	for _, name := range []string{"a", "b", "a", "c", "a"} {
		if _, _, err := resolve(name); err != nil {
			t.Fatal(err)
		}
	}
	// Cap is 2: "b" was LRU when "c" arrived; "a" stayed hot.
	if counts["a"] != 1 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if _, _, err := resolve("b"); err != nil {
		t.Fatal(err)
	}
	if counts["b"] != 2 {
		t.Fatalf("evicted name not re-resolved: %v", counts)
	}
	// Failed resolutions are retried, not cached.
	for i := 0; i < 2; i++ {
		if _, _, err := resolve("bad"); err == nil {
			t.Fatal("error swallowed")
		}
	}
	if counts["bad"] != 2 {
		t.Fatalf("failed resolution cached: %v", counts)
	}
}

func TestPublicServerCustomDatasets(t *testing.T) {
	R := MustGenerate("uniform", 800, 41)
	S := MustGenerate("uniform", 800, 42)
	opts := &ServerOptions{
		MaxT: 10_000,
		Datasets: func(name string) ([]Point, []Point, error) {
			if name != "mine" {
				return nil, nil, errors.New("unknown dataset")
			}
			return R, S, nil
		},
	}
	_, cl, done := newTestServer(t, opts)
	defer done()
	ctx := context.Background()
	pairs, err := cl.Sample(ctx, SampleRequest{Dataset: "mine", L: 300, Seed: 1, T: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 500 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// The default generators must NOT be reachable.
	if _, err := cl.Sample(ctx, SampleRequest{Dataset: "uniform", L: 300, T: 10}); err == nil {
		t.Fatal("custom resolver fell through to built-ins")
	}
}
