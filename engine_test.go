package srj

// Tests for the query-serving Engine: concurrent stress (run with
// -race), per-request determinism, and the constructor's error paths.

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestEngineAllAlgorithmsServe(t *testing.T) {
	R := MustGenerate("uniform", 2000, 1)
	S := MustGenerate("uniform", 2000, 2)
	const l = 200.0
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			e, err := NewEngine(R, S, l, &Options{Algorithm: algo, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := e.Sample(500)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 500 {
				t.Fatalf("got %d pairs", len(pairs))
			}
			for _, p := range pairs {
				if !Window(p.R, l).Contains(p.S) {
					t.Fatalf("invalid pair %v", p)
				}
			}
			if e.Algorithm() == "" || e.SizeBytes() <= 0 {
				t.Fatalf("bad metadata: %q, %d", e.Algorithm(), e.SizeBytes())
			}
		})
	}
}

// TestEngineConcurrentClients: many goroutines share one Engine; run
// with -race to audit that the post-Count structures are read-only.
func TestEngineConcurrentClients(t *testing.T) {
	R := MustGenerate("nyc", 5000, 1)
	S := MustGenerate("nyc", 5000, 2)
	const l = 150.0
	e, err := NewEngine(R, S, l, &Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Warm(8); err != nil {
		t.Fatal(err)
	}
	const clients = 12
	const requests = 25
	const perRequest = 400
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]Pair, perRequest)
			for req := 0; req < requests; req++ {
				n, err := e.SampleInto(buf)
				if err != nil {
					errs[i] = err
					return
				}
				for _, p := range buf[:n] {
					if !Window(p.R, l).Contains(p.S) {
						errs[i] = errors.New("pair outside window")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Requests != clients*requests || st.Samples != clients*requests*perRequest {
		t.Fatalf("stats mismatch: %+v", st)
	}
}

// TestEngineSeedDeterminism: same seed ⇒ same per-request samples for
// a sequential client, independent of clone recycling.
func TestEngineSeedDeterminism(t *testing.T) {
	R := MustGenerate("castreet", 2000, 1)
	S := MustGenerate("castreet", 2000, 2)
	const l = 200.0
	e1, err := NewEngine(R, S, l, &Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(R, S, l, &Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for req := 0; req < 6; req++ {
		a, err := e1.Sample(250)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Sample(250)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("request %d diverged at sample %d", req, i)
			}
		}
	}
}

func TestEngineConstructorErrors(t *testing.T) {
	R := MustGenerate("uniform", 100, 1)
	S := MustGenerate("uniform", 100, 2)
	if _, err := NewEngine(R, S, 100, &Options{WithoutReplacement: true}); err == nil ||
		!strings.Contains(err.Error(), "WithoutReplacement") {
		t.Errorf("WithoutReplacement accepted: %v", err)
	}
	if _, err := NewEngine(R, S, 100, &Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewEngine(R, S, -1, nil); err == nil {
		t.Error("negative half-extent accepted")
	}
	// A provably empty join fails at construction.
	far := []Point{{ID: 0, X: 0, Y: 0}}
	apart := []Point{{ID: 0, X: 9000, Y: 9000}}
	if _, err := NewEngine(far, apart, 1, nil); !errors.Is(err, ErrEmptyJoin) {
		t.Errorf("err = %v", err)
	}
}
