package srj

// The context-first sampling contract. The paper's whole point is
// amortization — build once, sample forever — and srj serves the
// "sample forever" half through two implementations: an in-process
// Engine and a remote Client. Source is the one request/response
// contract both satisfy, so callers (and every later tier: shard
// routers, alternative transports, dynamic-update frontends) are
// written once against Draw/DrawFunc and swap local for remote
// serving freely.

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/server"
)

// Source draws uniform independent join samples on request. Every
// implementation in this package — *Engine (in-process, pooled
// sampler clones), *Client bound to an engine key (remote, the
// srjserver wire protocol), and *Router bound to one (remote, the
// key's consistent-hash shard with ring failover) — satisfies it with
// identical semantics:
//
//   - Cancellation: ctx is honored between sampling batches; a
//     canceled or expired context stops an in-flight draw promptly
//     and surfaces as ctx.Err() via errors.Is.
//   - Determinism: equal Request.Seed values (nonzero) against the
//     same built structures yield identical samples, whatever other
//     traffic is interleaved.
//   - Caps: a request exceeding the configured per-request cap fails
//     fast with ErrSampleCap; malformed requests fail with
//     ErrBadRequest. No request forces an unbounded allocation.
//
// All implementations are safe for concurrent use.
type Source interface {
	// Draw serves one request and returns the samples with
	// per-request stats. On error the Result may carry the samples
	// drawn before the failure.
	Draw(ctx context.Context, req Request) (Result, error)
	// DrawFunc serves one request, streaming the samples to fn in
	// batches whose backing array is reused — fn must not retain it.
	// An error from fn aborts the draw and is returned verbatim.
	DrawFunc(ctx context.Context, req Request, fn func(batch []Pair) error) error
}

// Request carries the per-request parameters of one Source draw:
// T (the sample count), Seed (nonzero pins a reproducible stream),
// and Into (a caller buffer making Draw allocation-free). The zero
// value is invalid: a positive T (or a non-nil Into implying one) is
// required. The alias keeps local and remote validation literally
// the same code (Request.Resolve / Request.ResolveStream).
type Request = engine.Request

// Result is the answer to one Source.Draw: the samples plus
// per-request stats (Pairs, backed by Request.Into when one was
// provided, and the request's Elapsed latency).
type Result = engine.Result

// ErrBadRequest reports a malformed Source request: a non-positive
// sample count, or an Into buffer smaller than T. Unlike ErrSampleCap
// it is independent of any configured cap.
var ErrBadRequest = engine.ErrBadRequest

// ErrUnbound reports a Source call on a Client that was never bound
// to an engine key; see Client.Bind.
var ErrUnbound = errors.New("srj: client is not bound to an engine key (use Client.Bind)")

// Compile-time checks: every serving surface implements the contract
// — the in-process engine, the remote client, and the sharding
// router's bound form (Router.Bind).
var (
	_ Source = (*Engine)(nil)
	_ Source = (*Client)(nil)
	_ Source = (*router.Bound)(nil)
)

// Draw serves one request against the engine's once-built structures.
// See Source for the contract; this is the primary local sampling
// API. With Request.Into it is allocation-free in steady state.
func (e *Engine) Draw(ctx context.Context, req Request) (Result, error) {
	return e.e.Draw(ctx, req)
}

// DrawFunc serves one request, streaming batches to fn through a
// pooled buffer that is reused across batches and requests — fn must
// not retain it. ctx is checked between batches.
func (e *Engine) DrawFunc(ctx context.Context, req Request, fn func(batch []Pair) error) error {
	return e.e.DrawFunc(ctx, req, fn)
}

// Bind returns a copy of the client that serves the Source contract
// against one engine key: Draw and DrawFunc address (key.Dataset,
// key.L, key.Algorithm, key.Seed) on the remote server, with
// Request.Seed traveling as the wire protocol's per-request
// draw_seed. The receiver is unchanged; the full multi-key client
// API remains available on the bound copy.
func (c *Client) Bind(key EngineKey) *Client {
	key.Algorithm = server.NormalizeAlgorithm(key.Algorithm)
	return &Client{Client: c.Client, key: key, bound: true}
}

// Key returns the engine key the client is bound to, and whether it
// is bound at all.
func (c *Client) Key() (EngineKey, bool) { return c.key, c.bound }

// Draw serves one request against the bound engine key over the wire
// (the framed binary transport). See Source for the contract shared
// with the in-process Engine.
func (c *Client) Draw(ctx context.Context, req Request) (Result, error) {
	start := time.Now()
	t, err := c.resolveBound(req, Request.Resolve)
	if err != nil {
		return Result{}, err
	}
	sr := c.wireRequest(t, req.Seed)
	if req.Into == nil {
		// The low-level client already accumulates a stream with a
		// bounded preallocation; reuse it rather than duplicate it.
		pairs, err := c.Client.Sample(ctx, sr)
		return Result{Pairs: pairs, Elapsed: time.Since(start)}, err
	}
	// The stream aborts if the server over-delivers, so the appends
	// stay within t <= len(Into) and never reallocate: Result.Pairs
	// remains backed by the caller's buffer.
	out := req.Into[:0]
	err = c.Client.SampleFunc(ctx, sr, func(batch []Pair) error {
		out = append(out, batch...)
		return nil
	})
	return Result{Pairs: out, Elapsed: time.Since(start)}, err
}

// DrawFunc serves one request against the bound engine key, streaming
// each decoded batch to fn as it arrives off the wire — constant
// client memory however large T is. The batch's backing array is
// reused; fn must not retain it. As on every Source, req.Into never
// receives samples here — it only defaults T.
func (c *Client) DrawFunc(ctx context.Context, req Request, fn func(batch []Pair) error) error {
	t, err := c.resolveBound(req, Request.ResolveStream)
	if err != nil {
		return err
	}
	return c.Client.SampleFunc(ctx, c.wireRequest(t, req.Seed), fn)
}

// wireRequest spells the bound key plus per-request parameters as the
// wire protocol's SampleRequest.
func (c *Client) wireRequest(t int, drawSeed uint64) server.SampleRequest {
	return server.SampleRequest{
		Dataset:   c.key.Dataset,
		L:         c.key.L,
		Algorithm: c.key.Algorithm,
		Seed:      c.key.Seed,
		DrawSeed:  drawSeed,
		T:         t,
	}
}

// resolveBound is the shared front of the client's Source methods:
// the request must be well-formed (per the given Request validator —
// the same code the engine runs, so local and remote reject
// malformed requests identically, and before any network round trip)
// and the client bound to a key.
func (c *Client) resolveBound(req Request, resolve func(Request) (int, error)) (int, error) {
	if !c.bound {
		return 0, ErrUnbound
	}
	return resolve(req)
}
