package srj_test

// Crash-recovery at the server level: a Server opened over a DataDir
// must come back from close-and-reopen serving exactly the state its
// write-ahead log acknowledged — deletes stay deleted, inserts stay
// present, the update sequence resumes where it stopped — both on the
// pure log-replay path and on the snapshot-plus-tail path a
// background compaction leaves behind.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	srj "repro"
	"repro/srjtest"
)

// openRecoverable starts an in-process server over dir with the given
// resolver, fronted by an httptest server. The returned stop function
// closes the HTTP listener and then the server (syncing the WAL), so
// the directory can be reopened.
func openRecoverable(t *testing.T, dir string, R, S []srj.Point) (*srj.Client, func()) {
	t.Helper()
	srv, err := srj.NewServer(&srj.ServerOptions{
		Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
			return R, S, nil
		},
		MaxT:    200_000,
		DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("closing server: %v", err)
		}
	}
	t.Cleanup(stop)
	return srj.NewClientHTTP(ts.URL, confTransport(t)), stop
}

// lastApplied reads the store's last applied update ID for key from
// /v1/stats.
func lastApplied(t *testing.T, cl *srj.Client, key srj.EngineKey) uint64 {
	t.Helper()
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range stats.Stores {
		if info.Key.Dataset == key.Dataset {
			return info.LastAppliedID
		}
	}
	t.Fatalf("no store for %s in stats", key.Dataset)
	return 0
}

func TestServerRecoversFromLogReplay(t *testing.T) {
	R, S, l := srjtest.Data()
	dir := t.TempDir()
	key := srj.EngineKey{Dataset: "conf", L: l, Algorithm: "bbst", Seed: 7}
	ctx := context.Background()
	victim := R[2].ID

	cl, stop := openRecoverable(t, dir, R, S)
	bound := cl.Bind(key)
	// Three acknowledged updates, kept far below the rebuild threshold
	// so recovery exercises pure log replay (no snapshot exists yet).
	if _, err := bound.Apply(ctx, srj.Update{
		InsertR: []srj.Point{{ID: 4000, X: 9000, Y: 9000}},
		InsertS: []srj.Point{{ID: 4001, X: 9001, Y: 9001}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := bound.Apply(ctx, srj.Update{DeleteR: []int32{victim}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bound.Apply(ctx, srj.Update{InsertS: []srj.Point{{ID: 4002, X: 8999, Y: 9000}}}); err != nil {
		t.Fatal(err)
	}
	if got := lastApplied(t, cl, key); got != 3 {
		t.Fatalf("last applied %d before restart, want 3", got)
	}
	stop()

	// Reopen the same directory: the resolver still hands out the seed
	// data, but the store must resume from the log, not from scratch.
	cl2, _ := openRecoverable(t, dir, R, S)
	if got := lastApplied(t, cl2, key); got != 3 {
		t.Fatalf("last applied %d after restart, want 3", got)
	}
	bound2 := cl2.Bind(key)
	res, err := bound2.Draw(ctx, srj.Request{T: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	sawInsert := false
	for _, p := range res.Pairs {
		if p.R.ID == victim {
			t.Fatalf("deleted point %d resurrected by restart", victim)
		}
		if p.R.ID == 4000 && (p.S.ID == 4001 || p.S.ID == 4002) {
			sawInsert = true
		}
	}
	if !sawInsert {
		t.Fatal("inserted pair lost across restart")
	}
	// The sequence resumes exactly where it stopped.
	if _, err := bound2.Apply(ctx, srj.Update{DeleteS: []int32{4002}}); err != nil {
		t.Fatal(err)
	}
	if got := lastApplied(t, cl2, key); got != 4 {
		t.Fatalf("last applied %d after post-restart update, want 4", got)
	}
}

func TestServerRecoversFromSnapshot(t *testing.T) {
	R, S, l := srjtest.Data()
	dir := t.TempDir()
	key := srj.EngineKey{Dataset: "conf", L: l, Algorithm: "bbst", Seed: 11}
	ctx := context.Background()

	cl, stop := openRecoverable(t, dir, R, S)
	bound := cl.Bind(key)
	// Push the delta fraction past the rebuild threshold (0.25 of 120
	// base points) so the background compaction snapshots: delete the
	// first 20 R points and insert a far-away cluster.
	var n uint64
	for i := 0; i < 20; i++ {
		if _, err := bound.Apply(ctx, srj.Update{DeleteR: []int32{R[i].ID}}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	for i := 0; i < 15; i++ {
		if _, err := bound.Apply(ctx, srj.Update{
			InsertR: []srj.Point{{ID: int32(5000 + i), X: 9000, Y: 9000 + float64(i)}},
			InsertS: []srj.Point{{ID: int32(6000 + i), X: 9001, Y: 9000 + float64(i)}},
		}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// The rebuild (and with it the snapshot) runs in the background;
	// wait for the persister to report one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		snapped := false
		for _, info := range stats.Stores {
			if info.Key.Dataset == key.Dataset && info.LastSnapshotID > 0 {
				snapped = true
			}
		}
		if snapped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared within 10s of crossing the rebuild threshold")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop()

	cl2, _ := openRecoverable(t, dir, R, S)
	if got := lastApplied(t, cl2, key); got != n {
		t.Fatalf("last applied %d after snapshot recovery, want %d", got, n)
	}
	bound2 := cl2.Bind(key)
	res, err := bound2.Draw(ctx, srj.Request{T: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	deleted := make(map[int32]bool)
	for i := 0; i < 20; i++ {
		deleted[R[i].ID] = true
	}
	sawInsert := false
	for _, p := range res.Pairs {
		if deleted[p.R.ID] {
			t.Fatalf("deleted point %d resurrected by snapshot recovery", p.R.ID)
		}
		if p.R.ID >= 5000 && p.R.ID < 5015 {
			sawInsert = true
		}
	}
	if !sawInsert {
		t.Fatal("inserted cluster lost across snapshot recovery")
	}
}
