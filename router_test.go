package srj_test

// Router-specific conformance: the shared suite proves the Router is
// a Source; these tests prove it is a *sharding* Source — results
// independent of ring size, assignments stable under fleet resizes,
// and failover that distinguishes a dead shard from an answer.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	srj "repro"
	"repro/internal/server"
	"repro/srjtest"
)

// TestRouterRingSizeIndependence: equal-seed draws are byte-identical
// whatever the ring size — 1, 2, or 5 backends. Sharding is a memory
// and throughput decision; it must never be a semantics decision.
func TestRouterRingSizeIndependence(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 9}
	ctx := context.Background()
	var want []srj.Pair
	for _, n := range []int{1, 2, 5} {
		src := newRouterSourceN(t, cfg, n)
		res, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 77})
		if err != nil {
			t.Fatalf("%d backends: %v", n, err)
		}
		if want == nil {
			want = res.Pairs
			continue
		}
		for i := range want {
			if res.Pairs[i] != want[i] {
				t.Fatalf("%d backends: diverged from 1 backend at sample %d", n, i)
			}
		}
	}
}

// TestRouterStableAssignment: growing or shrinking the fleet by one
// backend moves only ~1/n of the keys — the consistent-hashing
// property that makes a resize invalidate ~1/n of the fleet's cached
// engines instead of all of them.
func TestRouterStableAssignment(t *testing.T) {
	addrs := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("http://shard-%d:8080", i)
		}
		return out
	}
	newRouter := func(n int) *srj.Router {
		// Probing disabled: these routers route keys, not requests,
		// and their backends are fictional.
		rt, err := srj.NewRouter(addrs(n), srj.RouterOptions{ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	keys := make([]srj.EngineKey, 0, 2000)
	for i := 0; i < 1000; i++ {
		keys = append(keys,
			srj.EngineKey{Dataset: fmt.Sprintf("ds-%d", i), L: 100, Algorithm: "bbst", Seed: uint64(i)},
			srj.EngineKey{Dataset: "shared", L: float64(i) + 0.5, Algorithm: "kds", Seed: uint64(i)},
		)
	}

	const n = 5
	base := newRouter(n)
	grown := newRouter(n + 1)
	shrunk := newRouter(n - 1)

	addedAddr := fmt.Sprintf("http://shard-%d:8080", n)
	removedAddr := fmt.Sprintf("http://shard-%d:8080", n-1)
	counts := map[string]int{}
	movedGrow, movedShrink := 0, 0
	for _, k := range keys {
		home := base.Locate(k)
		counts[home]++
		if g := grown.Locate(k); g != home {
			movedGrow++
			// A key that moves on growth must move TO the new backend:
			// arcs are only taken, never reshuffled.
			if g != addedAddr {
				t.Fatalf("key %v moved to old backend %s on growth", k, g)
			}
		}
		if home == removedAddr {
			// Keys on the removed backend must all move (anywhere
			// surviving); every other key must stay put.
			movedShrink++
		} else if s := shrunk.Locate(k); s != home {
			t.Fatalf("key %v moved from %s to %s although its backend survived the shrink", k, home, s)
		}
	}

	// Balance: every backend owns a meaningful share (the vnode count
	// is chosen so no arc collapses).
	for _, a := range addrs(n) {
		if c := counts[a]; c < len(keys)/(4*n) {
			t.Fatalf("backend %s owns only %d/%d keys", a, c, len(keys))
		}
	}
	// Movement: ~1/(n+1) of keys move on growth, ~1/n on shrink.
	// Generous 2x bounds keep the test sturdy across hash tweaks while
	// still catching a modulo-style reshuffle (which moves ~all keys).
	if f := float64(movedGrow) / float64(len(keys)); f == 0 || f > 2.0/float64(n+1) {
		t.Fatalf("growth moved %.1f%% of keys, want ~%.1f%%", f*100, 100.0/float64(n+1))
	}
	if f := float64(movedShrink) / float64(len(keys)); f == 0 || f > 2.0/float64(n) {
		t.Fatalf("shrink moved %.1f%% of keys, want ~%.1f%%", f*100, 100.0/float64(n))
	}
}

// flakyBackend wraps a backend handler with a fault injector: while
// kills is positive, each /v1/sample request is answered with a valid
// but truncated binary stream — the real response's first bytes, cut
// mid-stream — and then the TCP connection is dropped. That is the
// transport failure mode failover exists for: the stream died without
// a semantic answer.
func flakyBackend(t *testing.T, inner http.Handler, kills *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sample" || kills.Add(-1) < 0 {
			inner.ServeHTTP(w, r)
			return
		}
		// Replay the request against the real handler to get the true
		// stream (seeded draws are deterministic, so this is exactly
		// what the healthy backend would have sent), then deliver only
		// a prefix and kill the connection.
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		rec := httptest.NewRecorder()
		replay := r.Clone(r.Context())
		replay.Body = io.NopCloser(bytes.NewReader(body))
		inner.ServeHTTP(rec, replay)
		full := rec.Body.Bytes()
		// Cut just short of the end: the client has then decoded (and
		// delivered) every complete frame but one, so the failover
		// resumes a draw that is mostly delivered — the hardest case,
		// exercising the skip-the-delivered-prefix path.
		cut := len(full) - 30
		if cut <= 0 {
			t.Errorf("nothing to truncate: %d-byte response", len(full))
			return
		}
		conn, bufrw, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		fmt.Fprintf(bufrw, "HTTP/1.1 200 OK\r\nContent-Type: %s\r\nConnection: close\r\n\r\n",
			rec.Header().Get("Content-Type"))
		bufrw.Write(full[:cut])
		bufrw.Flush()
	})
}

// routerFixture builds a fleet whose first ring choice for the given
// key can be made to fail: it finds the key's home backend and wraps
// it with the fault injector.
func routerFixture(t *testing.T, cfg srjtest.Config, n int, key srj.EngineKey) (*srj.Router, *atomic.Int32, []*atomic.Int64) {
	t.Helper()
	var kills atomic.Int32
	sampleHits := make([]*atomic.Int64, n)
	addrs := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT: cfg.MaxT,
		})
		if err != nil {
			t.Fatal(err)
		}
		hits := &atomic.Int64{}
		sampleHits[i] = hits
		counted := func(inner http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/sample" {
					hits.Add(1)
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewUnstartedServer(nil)
		servers[i] = ts
		ts.Config.Handler = counted(srv)
		ts.Start()
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	rt, err := srj.NewRouter(addrs, srj.RouterOptions{HTTPClient: confTransport(t), ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Arm the fault injector on the key's home shard, so the first
	// attempt of a routed draw is the one that dies.
	home := rt.Locate(key)
	for i, a := range addrs {
		if a == home {
			servers[i].Config.Handler = flakyBackend(t, servers[i].Config.Handler, &kills)
		}
	}
	return rt, &kills, sampleHits
}

// TestRouterFailoverMidStream: a connection that dies mid-stream on
// the key's home shard fails over to the next ring node — invisibly:
// the draw completes, delivers exactly t samples, and a seeded draw
// stays byte-identical to one served without any failure.
func TestRouterFailoverMidStream(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 11}
	key := srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed}
	rt, kills, _ := routerFixture(t, cfg, 3, key)
	defer rt.Close()
	src := rt.Bind(key)
	ctx := context.Background()

	// The truth: a draw with no faults armed.
	want, err := src.Draw(ctx, srj.Request{T: 5000, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}

	// Same draw with the home shard dying mid-stream on the next
	// request.
	kills.Store(1)
	var got []srj.Pair
	err = src.DrawFunc(ctx, srj.Request{T: 5000, Seed: 123}, func(batch []srj.Pair) error {
		got = append(got, batch...)
		return nil
	})
	if err != nil {
		t.Fatalf("draw with failover: %v", err)
	}
	if kills.Load() >= 1 {
		t.Fatal("fault injector never fired")
	}
	if len(got) != len(want.Pairs) {
		t.Fatalf("failover delivered %d samples, want %d", len(got), len(want.Pairs))
	}
	for i := range got {
		if got[i] != want.Pairs[i] {
			t.Fatalf("failover diverged at sample %d: %v vs %v", i, got[i], want.Pairs[i])
		}
	}

	// The router remembers: the home shard is marked unhealthy and the
	// failover is counted.
	st := rt.Stats()
	var failovers uint64
	unhealthy := 0
	for _, b := range st.Backends {
		failovers += b.Failovers
		if !b.Healthy {
			unhealthy++
		}
	}
	if failovers == 0 || unhealthy == 0 {
		t.Fatalf("failover not recorded: %+v", st.Backends)
	}
}

// TestRouterFailoverConnectionRefused: a backend that is simply gone
// (connection refused) is skipped the same way.
func TestRouterFailoverConnectionRefused(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 12}
	live := startBackends(t, cfg, 2)
	// A dead address: bind a listener, note the port, close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, err := srj.NewRouter(append([]string{deadURL}, live...), srj.RouterOptions{
		HTTPClient:    confTransport(t),
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	key := srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed}
	res, err := rt.Bind(key).Draw(context.Background(), srj.Request{T: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1000 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
}

// TestRouterSemanticErrorsDoNotFailover: answers are not failures. A
// backend that *refuses* a request — over-cap t, malformed key —
// answered it; retrying the refusal on every shard would turn one
// client error into n. The sentinel must surface unchanged, from the
// first backend asked, with no other backend contacted.
func TestRouterSemanticErrorsDoNotFailover(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 1000, BuildSeed: 13}
	key := srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed}
	rt, _, sampleHits := routerFixture(t, cfg, 3, key)
	defer rt.Close()
	ctx := context.Background()

	cases := []struct {
		name string
		key  srj.EngineKey
		req  srj.Request
		want error
	}{
		{"over-cap", key, srj.Request{T: cfg.MaxT + 1}, srj.ErrSampleCap},
		{"bad algorithm", srj.EngineKey{Dataset: "conf", L: cfg.L, Algorithm: "no-such"}, srj.Request{T: 10}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := int64(0)
			for _, h := range sampleHits {
				before += h.Load()
			}
			_, err := rt.Bind(tc.key).Draw(ctx, tc.req)
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			var apiErr *server.APIError
			if tc.want == nil && !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want an APIError", err)
			}
			after := int64(0)
			for _, h := range sampleHits {
				after += h.Load()
			}
			if after-before != 1 {
				t.Fatalf("semantic error contacted %d backends, want exactly 1", after-before)
			}
			// And the fleet is still considered healthy: an answer is
			// not an outage.
			for _, b := range rt.Stats().Backends {
				if !b.Healthy {
					t.Fatalf("semantic error marked %s unhealthy", b.Addr)
				}
			}
		})
	}

	// The refusals were answers, so they count as backend failures
	// (alertable) — one per case, with zero failovers.
	var failures, failovers uint64
	for _, b := range rt.Stats().Backends {
		failures += b.Failures
		failovers += b.Failovers
	}
	if failures != uint64(len(cases)) || failovers != 0 {
		t.Fatalf("failures = %d (want %d), failovers = %d (want 0)", failures, len(cases), failovers)
	}
}
