package srj

// One benchmark per table and figure of the paper's evaluation
// (Section V), plus per-algorithm sampling-throughput benchmarks.
// Each artifact benchmark executes the corresponding experiment
// runner at benchmark scale; run the srjbench command for full-scale
// reproductions with rendered tables.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bbst"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/join"
	"repro/internal/rng"
	"repro/internal/rtree"
)

// benchScale keeps each artifact benchmark to roughly a second per
// iteration; srjbench's default scale is 5x larger.
func benchScale() exp.Scale {
	s := exp.DefaultScale(10_000)
	s.T = 10_000
	return s
}

func runArtifact(b *testing.B, fn func() (*exp.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty result table")
		}
	}
}

// BenchmarkTable2Preprocessing regenerates Table II: offline
// pre-processing time, KDS (kd-tree build) vs BBST (sort only).
func BenchmarkTable2Preprocessing(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunTable2(s) })
}

// BenchmarkFigure4Memory regenerates Fig. 4: memory usage of the
// three algorithms (plus the range-tree footnote) vs dataset size.
func BenchmarkFigure4Memory(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunFigure4(s, nil) })
}

// BenchmarkAccuracy regenerates the Section V-B measurement: the
// approximation ratio Σµ/|J| of BBST's upper bounding.
func BenchmarkAccuracy(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunAccuracy(s) })
}

// BenchmarkTable3Decomposed regenerates Table III: total time with
// the GM/UB phase decomposition for all three algorithms.
func BenchmarkTable3Decomposed(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunTable3(s) })
}

// BenchmarkTable4Sampling regenerates Table IV: sampling time and
// iteration counts at the default setting.
func BenchmarkTable4Sampling(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunTable4(s) })
}

// BenchmarkFigure5Range regenerates Fig. 5: impact of the range
// (window) size l.
func BenchmarkFigure5Range(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunFigure5(s, nil) })
}

// BenchmarkFigure6Samples regenerates Fig. 6: impact of the number of
// samples t (sweep scaled down from the paper's 10^5..10^9).
func BenchmarkFigure6Samples(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) {
		return exp.RunFigure6(s, []int{1_000, 10_000, 100_000})
	})
}

// BenchmarkFigure7Scalability regenerates Fig. 7: impact of the
// dataset size.
func BenchmarkFigure7Scalability(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunFigure7(s, nil) })
}

// BenchmarkFigure8Ratio regenerates Fig. 8: impact of the size ratio
// n/(n+m) on BBST.
func BenchmarkFigure8Ratio(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunFigure8(s, nil) })
}

// BenchmarkFigure9Variant regenerates Fig. 9: BBST vs the kd-tree-
// per-cell variant.
func BenchmarkFigure9Variant(b *testing.B) {
	s := benchScale()
	runArtifact(b, func() (*exp.Table, error) { return exp.RunFigure9(s) })
}

// BenchmarkSampleThroughput measures steady-state samples/sec of each
// algorithm after the counting phase, on the same workload — the
// per-sample cost Table IV isolates.
func BenchmarkSampleThroughput(b *testing.B) {
	R := MustGenerate("nyc", 50_000, 1)
	S := MustGenerate("nyc", 50_000, 2)
	const l = 100
	for _, algo := range []Algorithm{BBST, KDS, KDSRejection, GridKD, RTS} {
		b.Run(string(algo), func(b *testing.B) {
			s, err := NewSampler(R, S, l, &Options{Algorithm: algo, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Next(); err != nil { // force all phases
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Next(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhases isolates the three online phases of the BBST
// pipeline on a mid-sized workload.
func BenchmarkPhases(b *testing.B) {
	R := MustGenerate("imis", 100_000, 1)
	S := MustGenerate("imis", 100_000, 2)
	cfg := core.Config{HalfExtent: 100, Seed: 1}
	b.Run("GridMap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.NewBBST(R, S, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Preprocess(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := s.Build(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		}
	})
	b.Run("UpperBound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.NewBBST(R, S, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Build(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := s.Count(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		}
	})
}

// BenchmarkAblationBucketCap sweeps the BBST bucket capacity around
// the paper's ceil(log2 m) choice (Definition 3): smaller buckets
// tighten µ but deepen the tree; larger buckets do the opposite. The
// benchmark measures end-to-end count+sample cost per capacity.
func BenchmarkAblationBucketCap(b *testing.B) {
	pts := MustGenerate("nyc", 100_000, 1)
	S := pts
	R := MustGenerate("nyc", 20_000, 2)
	for _, cap := range []int{4, 8, 17, 32, 64} { // 17 = ceil(log2 100k)
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBucketCapTrial(b, R, S, cap)
			}
		})
	}
}

func runBucketCapTrial(b *testing.B, R, S []Point, cap int) {
	b.Helper()
	g, err := grid.Build(S, 100)
	if err != nil {
		b.Fatal(err)
	}
	pairs := map[grid.Key]*bbst.Pair{}
	g.Cells(func(c *grid.Cell) {
		p, err := bbst.Build(c.XSorted, cap)
		if err != nil {
			b.Fatal(err)
		}
		pairs[c.Key] = p
	})
	// Corner-count every R point against its SW corner cell.
	r := rng.New(uint64(cap))
	var scratch bbst.Scratch
	total := 0
	var nb [grid.NumDirections]*grid.Cell
	for _, q := range R {
		w := Window(q, 100)
		g.Neighborhood(q, &nb)
		if c := nb[grid.SouthWest]; c != nil {
			total += pairs[c.Key].MuS(bbst.SouthWest, w, &scratch)
			if pt, ok := pairs[c.Key].SampleSlotS(bbst.SouthWest, w, r, &scratch); ok {
				_ = pt
			}
		}
	}
	if total < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkWithoutReplacement measures the cost of the duplicate
// filter (Definition 2 remark) relative to with-replacement sampling.
func BenchmarkWithoutReplacement(b *testing.B) {
	R := MustGenerate("foursquare", 50_000, 1)
	S := MustGenerate("foursquare", 50_000, 2)
	for _, wo := range []bool{false, true} {
		name := "with-replacement"
		if wo {
			name = "without-replacement"
		}
		b.Run(name, func(b *testing.B) {
			newSampler := func() Sampler {
				s, err := NewSampler(R, S, 100, &Options{Seed: 1, WithoutReplacement: wo})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Next(); err != nil {
					b.Fatal(err)
				}
				return s
			}
			s := newSampler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Next(); err != nil {
					// Without replacement, large b.N can exhaust the
					// finite join; restart on a fresh sampler.
					b.StopTimer()
					s = newSampler()
					b.StartTimer()
				}
			}
		})
	}
}

// runClients distributes b.N requests across `clients` concurrent
// goroutines, so one benchmark op is one served request regardless of
// concurrency.
func runClients(b *testing.B, clients int, req func() error) {
	b.Helper()
	if clients > b.N {
		clients = b.N
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	per := b.N / clients
	extra := b.N % clients
	b.ResetTimer()
	for i := 0; i < clients; i++ {
		quota := per
		if i < extra {
			quota++
		}
		wg.Add(1)
		go func(i, quota int) {
			defer wg.Done()
			for k := 0; k < quota; k++ {
				if err := req(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, quota)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingThroughput is the serving comparison behind the
// Engine: 8 concurrent clients, each request drawing 10k samples from
// a 100k x 100k input. One op is one request. "engine" amortizes the
// BBST structures across all requests (pooled clones, fresh stream
// per checkout); "engine-pooled" additionally streams through pooled
// batch buffers (allocation-free steady state); "rebuild" pays the
// full preprocess+build+count pipeline inside every request, which is
// what calling the one-shot srj.Sample per query costs. The paper's
// amortization argument predicts — and this benchmark shows — engine
// beating rebuild by well over 5x.
func BenchmarkServingThroughput(b *testing.B) {
	R := MustGenerate("nyc", 100_000, 1)
	S := MustGenerate("nyc", 100_000, 2)
	const l = 100.0
	const reqT = 10_000
	const clients = 8
	report := func(b *testing.B) {
		b.ReportMetric(float64(reqT)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	}
	b.Run("engine", func(b *testing.B) {
		eng, err := NewEngine(R, S, l, &Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Warm(clients); err != nil {
			b.Fatal(err)
		}
		runClients(b, clients, func() error {
			_, err := eng.Sample(reqT)
			return err
		})
		report(b)
	})
	b.Run("engine-pooled", func(b *testing.B) {
		eng, err := NewEngine(R, S, l, &Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Warm(clients); err != nil {
			b.Fatal(err)
		}
		runClients(b, clients, func() error {
			return eng.SampleFunc(reqT, func([]Pair) error { return nil })
		})
		report(b)
	})
	b.Run("rebuild", func(b *testing.B) {
		runClients(b, clients, func() error {
			_, err := Sample(R, S, l, reqT, &Options{Seed: 1})
			return err
		})
		report(b)
	})
}

// BenchmarkJoinAlgorithms compares the exact-join substrates; the
// paper's premise is that even the best of these is Ω(|J|) and thus
// slower than sampling for large joins.
func BenchmarkJoinAlgorithms(b *testing.B) {
	R := MustGenerate("castreet", 30_000, 1)
	S := MustGenerate("castreet", 30_000, 2)
	const l = 100
	b.Run("planesweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			join.PlaneSweep(R, S, l, func(geom.Point, geom.Point) bool { count++; return true })
		}
	})
	b.Run("gridjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			if err := join.GridJoin(R, S, l, func(geom.Point, geom.Point) bool { count++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexnestedloop", func(b *testing.B) {
		tree := rtree.New(S)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			join.IndexNestedLoop(R, S, tree, l, func(geom.Point, geom.Point) bool { count++; return true })
		}
	})
}
