package srj

// The mutable-dataset surface. A Sampler and an Engine are bulk-built
// over immutable R and S; a Store is the same amortization argument
// made mutable: the bulk-built base keeps serving while inserts and
// deletes accumulate in LSM-style per-side delta buffers, sampling
// draws from a weighted mixture over {base, delta} join components
// (uniform over the *live* join — see internal/dynamic), and a
// background compaction folds the deltas into a fresh base when they
// grow past a threshold. Every applied batch bumps the dataset's
// generation number, which is what invalidates caches across the
// serving stack: srjserver keys its engine registry by generation,
// and the shard router broadcasts updates so every shard advances
// together.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/server"
)

// Update is one batch of mutations applied to a Store (or, through
// Client.Apply / Router.Bind().Apply, to a remote store): points to
// insert and point IDs to delete, per side. Deleting an ID removes
// every live point carrying it on that side; an absent ID is a
// no-op; re-inserting a deleted ID is allowed. The zero Update is
// empty and acts as a generation probe.
type Update = dynamic.Update

// ErrStaleGeneration reports a draw that raced a concurrent update:
// the engine it hit was built for a dataset generation that an
// applied batch has since retired. Remote callers see it too — the
// server maps it to wire code "stale_generation" (HTTP 409) — and
// the fix is the same locally and remotely: retry against the
// current generation.
var ErrStaleGeneration = dynamic.ErrStaleGeneration

// StoreOptions tunes a Store; the zero value (or nil) uses the BBST
// algorithm with seed 0 and the default compaction threshold.
type StoreOptions struct {
	// Algorithm selects the base sampler; empty means BBST. The
	// algorithm must support engine serving and per-trial sampling
	// (all do except KDSRejection).
	Algorithm Algorithm
	// Seed drives the serving pools and delta samplers; equal seeds
	// make equal-seeded draws reproducible within one generation.
	Seed uint64
	// MaxRejects bounds consecutive rejected sampling iterations
	// (0 = default budget). Deletes consume acceptance until the next
	// compaction, so a store kept far past its threshold degrades
	// toward ErrLowAcceptance instead of ever serving deleted points.
	MaxRejects int
	// FractionalCascading and BucketCap tune the BBST base exactly as
	// in Options.
	FractionalCascading bool
	BucketCap           int
	// MaxT caps the samples one request may ask for (0 = unlimited),
	// like Engine.SetMaxT.
	MaxT int
	// RebuildFraction is the delta fraction (buffered ops over base
	// points) that triggers a background compaction; <= 0 means
	// dynamic.DefaultRebuildFraction (0.25).
	RebuildFraction float64
	// DisableAutoRebuild suppresses threshold-triggered compactions;
	// Compact still works on demand.
	DisableAutoRebuild bool

	// Recovery knobs, set by NewServer when it rebuilds a store from a
	// snapshot: the generation and update ID the snapshot was taken at.
	// Unexported on purpose — callers outside this package construct
	// stores at generation 0 and recover through ServerOptions.DataDir.
	initialGeneration  uint64
	initialLastApplied uint64
}

// Store is a mutable join-sampling dataset: the fourth Source
// implementation, next to Engine, Client.Bind, and Router.Bind —
// plus Apply, the mutation half. All methods are safe for concurrent
// use; draws never block on writers.
type Store struct {
	st *dynamic.Store
}

// NewStore validates R and S, bulk-builds the chosen algorithm's base
// structures, and returns a Store serving them at generation 0.
// Unlike NewEngine, empty inputs (even a provably empty join) are
// accepted: a mutable dataset may start empty and be filled through
// Apply, with Draw answering ErrEmptyJoin until it is. The slices are
// not copied and must not be mutated afterwards — all mutation goes
// through Apply, which never touches them.
func NewStore(R, S []Point, l float64, opts *StoreOptions) (*Store, error) {
	var o StoreOptions
	if opts != nil {
		o = *opts
	}
	algo := o.Algorithm
	if algo == "" {
		algo = BBST
	}
	base := &Options{
		Algorithm:           algo,
		Seed:                o.Seed,
		MaxRejects:          o.MaxRejects,
		FractionalCascading: o.FractionalCascading,
		BucketCap:           o.BucketCap,
	}
	st, err := dynamic.NewStore(R, S, dynamic.Config{
		BuildBase: func(R, S []Point) (core.Cloner, error) {
			s, err := NewSampler(R, S, l, base)
			if err != nil {
				return nil, err
			}
			c, ok := s.(core.Cloner)
			if !ok {
				return nil, fmt.Errorf("srj: algorithm %s does not support dynamic serving", s.Name())
			}
			return c, nil
		},
		HalfExtent:         l,
		Seed:               o.Seed,
		MaxRejects:         o.MaxRejects,
		MaxT:               o.MaxT,
		RebuildFraction:    o.RebuildFraction,
		DisableAutoRebuild: o.DisableAutoRebuild,
		Name:               "dynamic+" + string(algo),
		InitialGeneration:  o.initialGeneration,
		InitialLastApplied: o.initialLastApplied,
	})
	if err != nil {
		return nil, err
	}
	return &Store{st: st}, nil
}

// Apply absorbs one batch of mutations and returns the new dataset
// generation. Batches serialize; draws in flight keep serving the
// snapshot they started on. An empty update returns the current
// generation without bumping it. Crossing the compaction threshold
// schedules a background base rebuild — Apply itself never pays a
// bulk build.
func (s *Store) Apply(ctx context.Context, u Update) (uint64, error) {
	return s.st.Apply(ctx, u)
}

// Draw serves one request against the current generation. See Source
// for the contract shared with Engine, Client, and Router.
func (s *Store) Draw(ctx context.Context, req Request) (Result, error) {
	return s.st.Draw(ctx, req)
}

// DrawFunc serves one request against the current generation,
// streaming batches to fn. One request is served by one snapshot: an
// Apply landing mid-stream never mixes generations within a draw.
func (s *Store) DrawFunc(ctx context.Context, req Request, fn func(batch []Pair) error) error {
	return s.st.DrawFunc(ctx, req, fn)
}

// Bind returns the store typed as its Source view, for symmetry with
// Client.Bind and Router.Bind (a Store serves exactly one dataset, so
// there is no key to fix).
func (s *Store) Bind() Source { return s }

// Generation reports the current dataset generation: 0 at
// construction, bumped by every non-empty Apply and every completed
// compaction.
func (s *Store) Generation() uint64 { return s.st.Generation() }

// Compact folds the current state — buffered deltas, or the in-place
// maintained index — into a fresh bulk build now and waits for the
// swap. On the in-place path this is the only planned rebuild; the
// overlay fallback also rebuilds in the background when its delta
// fraction crosses RebuildFraction.
func (s *Store) Compact(ctx context.Context) error { return s.st.Compact(ctx) }

// Pending reports the buffered mutation count awaiting compaction
// (always 0 on the in-place maintenance path, which buffers nothing).
func (s *Store) Pending() int { return s.st.Pending() }

// InPlaceOps reports how many operations were absorbed by in-place
// index maintenance — the Õ(ops) write path that edits the live
// structures copy-on-write instead of buffering toward a rebuild.
func (s *Store) InPlaceOps() uint64 { return s.st.InPlaceOps() }

// Rebuilds reports how many base rebuilds have swapped in. In steady
// churn on the in-place path it stays 0: rebuilds happen only on
// Compact or when dataset geometry drifts far from the bulk build.
func (s *Store) Rebuilds() uint64 { return s.st.Rebuilds() }

// Stats aggregates serving counters across all generations served so
// far.
func (s *Store) Stats() EngineStats { return s.st.Stats() }

// SizeBytes estimates the retained footprint of the current
// generation's structures.
func (s *Store) SizeBytes() int { return s.st.SizeBytes() }

// EstimateJoinSize estimates the live join size |J| from `samples`
// calibration draws — the mutable sibling of EstimateJoinSize over a
// Sampler. An empty join estimates 0.
func (s *Store) EstimateJoinSize(samples int) (float64, error) {
	return s.st.EstimateJoinSize(samples)
}

// Quiesce waits for any in-flight background compaction, so
// benchmarks and tests can time or assert against a settled store.
func (s *Store) Quiesce(ctx context.Context) error { return s.st.Quiesce(ctx) }

// Apply posts one update batch against the bound engine key's remote
// store and returns the new dataset generation — the remote half of
// Store.Apply, served by POST /v1/update. The batch travels in the
// framed binary encoding. Requires a bound client (see Bind);
// ErrUnbound otherwise.
func (c *Client) Apply(ctx context.Context, u Update) (uint64, error) {
	if !c.bound {
		return 0, ErrUnbound
	}
	resp, err := c.Client.ApplyUpdate(ctx, server.UpdateRequest{
		Dataset:   c.key.Dataset,
		L:         c.key.L,
		Algorithm: c.key.Algorithm,
		Seed:      c.key.Seed,
		InsertR:   u.InsertR,
		InsertS:   u.InsertS,
		DeleteR:   u.DeleteR,
		DeleteS:   u.DeleteS,
	})
	return resp.Generation, err
}

// Compile-time check: the Store is the fourth Source.
var _ Source = (*Store)(nil)
