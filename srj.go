// Package srj (module "repro") is a Go implementation of "Random
// Sampling over Spatial Range Joins" (Daichi Amagata, ICDE 2025).
//
// Given two point sets R and S and a window half-extent l, the spatial
// range join is J = {(r, s) | r ∈ R, s ∈ S, s inside the window
// [r.X-l, r.X+l] x [r.Y-l, r.Y+l]}. This package draws uniform,
// independent random samples of J *without computing the join*, in
// Õ(n + m + t) expected time and O(n + m) space using the paper's
// BBST (Bucket-based Binary Search Tree) algorithm; the paper's two
// baselines and several ablations are available for comparison.
//
// Quick start:
//
//	R := srj.MustGenerate("castreet", 100_000, 1)
//	S := srj.MustGenerate("castreet", 100_000, 2)
//	sampler, err := srj.NewSampler(R, S, 100, nil) // BBST by default
//	if err != nil { ... }
//	pairs, err := sampler.Sample(1_000_000)
//
// Samples can also be drawn progressively with Next (Definition 2 of
// the paper allows t = ∞):
//
//	for {
//	    pair, err := sampler.Next()
//	    ...
//	}
//
// # Serving
//
// A Sampler rebuilds its indexes per query, which wastes the paper's
// amortization when many requests target the same R, S, and l. An
// Engine builds the structures once and serves any number of
// concurrent requests against them through the context-first Source
// API — Draw(ctx, Request) and the streaming DrawFunc — each request
// drawn from a pooled sampler clone:
//
//	eng, err := srj.NewEngine(R, S, 100, nil)
//	if err != nil { ... }
//	// any number of goroutines:
//	res, err := eng.Draw(ctx, srj.Request{T: 10_000})
//	// reproducible per request, whatever traffic is interleaved:
//	res, err = eng.Draw(ctx, srj.Request{T: 10_000, Seed: 42})
//	// allocation-free, into a reused buffer:
//	res, err = eng.Draw(ctx, srj.Request{Into: buf})
//	fmt.Println(eng.Stats()) // requests, samples/sec inputs, latency
//
// The amortization also survives a process boundary: NewServer wraps
// a memory-budgeted registry of engines in an HTTP API (the handler
// behind cmd/srjserver) and NewClient speaks its wire protocol. A
// client bound to one engine key is a Source too — the same
// Draw/DrawFunc contract, cancellation and seeds included, served
// remotely:
//
//	src := srj.NewClient("http://localhost:8080").
//	    Bind(srj.EngineKey{Dataset: "nyc", L: 100, Algorithm: "bbst"})
//	res, err := src.Draw(ctx, srj.Request{T: 10_000, Seed: 42})
//
// Anything written against Source swaps local for remote serving
// freely — see serve.go, examples/serving, and examples/remote.
//
// # Migrating to the Source API
//
// The pre-Source per-implementation methods remain as thin shims:
//
//	Engine.Sample(t)            → Engine.Draw(ctx, Request{T: t})
//	Engine.SampleInto(buf)      → Engine.Draw(ctx, Request{Into: buf})
//	Engine.SampleFunc(t, fn)    → Engine.DrawFunc(ctx, Request{T: t}, fn)
//	Client.Sample(ctx, req)     → Client.Bind(key).Draw(ctx, Request{T: req.T})
//	Client.SampleFunc(ctx, req, fn) → Client.Bind(key).DrawFunc(ctx, Request{T: req.T}, fn)
package srj

import (
	"fmt"
	"math"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/join"
)

// Point is a 2-D point with a caller-assigned ID.
type Point = geom.Point

// Pair is one sampled element (r, s) of the join result J.
type Pair = geom.Pair

// Rect is a closed axis-aligned rectangle.
type Rect = geom.Rect

// Stats exposes per-phase timings and sampling counters.
type Stats = core.Stats

// Sampler draws uniform independent samples of the spatial range
// join. See core.Sampler for the phase-level contract.
type Sampler = core.Sampler

// Errors re-exported from the algorithm layer.
var (
	// ErrEmptyJoin reports a provably empty join result.
	ErrEmptyJoin = core.ErrEmptyJoin
	// ErrLowAcceptance reports an exhausted rejection budget.
	ErrLowAcceptance = core.ErrLowAcceptance
	// ErrSampleCap reports a request exceeding an Engine's per-request
	// sample cap (see Engine.SetMaxT).
	ErrSampleCap = engine.ErrSampleCap
)

// Algorithm selects the sampling algorithm.
type Algorithm string

// Available algorithms.
const (
	// BBST is the paper's proposed algorithm: Õ(n+m+t) expected time,
	// O(n+m) space. The default and the right choice in practice.
	BBST Algorithm = "bbst"
	// KDS is baseline 1: exact kd-tree counting, O((n+t)·sqrt m).
	KDS Algorithm = "kds"
	// KDSRejection is baseline 2: grid upper bounds with rejection.
	KDSRejection Algorithm = "kds-rejection"
	// GridKD is the Fig. 9 ablation: the BBST pipeline with a kd-tree
	// per cell instead of the two BBSTs.
	GridKD Algorithm = "gridkd"
	// RTS is an ablation of baseline 1 using an aggregate R-tree.
	RTS Algorithm = "rts"
	// JoinSample materializes the full join, then samples; Θ(|J|)
	// time and space. For testing and small inputs only.
	JoinSample Algorithm = "joinsample"
)

// Algorithms lists all selectable algorithms.
func Algorithms() []Algorithm {
	return []Algorithm{BBST, KDS, KDSRejection, GridKD, RTS, JoinSample}
}

// Options tunes a sampler; the zero value (or nil) uses the BBST
// algorithm with seed 0 and sampling with replacement.
type Options struct {
	// Algorithm to use; empty means BBST.
	Algorithm Algorithm
	// Seed drives all randomness; equal seeds give equal samples.
	Seed uint64
	// WithoutReplacement suppresses duplicate pairs.
	WithoutReplacement bool
	// MaxRejects bounds consecutive rejected sampling iterations
	// (0 = default budget). Only relevant for degenerate inputs.
	MaxRejects int
	// FractionalCascading enables the O(log m) corner queries of the
	// BBST via Chazelle–Guibas bridges (the paper's optional
	// optimization in Lemma 4), trading extra memory for faster
	// counting and sampling on large cells. BBST algorithm only.
	FractionalCascading bool
	// BucketCap overrides the BBST bucket capacity; 0 keeps the
	// paper's b = ceil(log2 m) (Definition 3). BBST algorithm only;
	// exposed for ablation studies.
	BucketCap int
}

// NewSampler builds a join sampler for R and S with window half-extent
// l (the window of r is [r.X-l, r.X+l] x [r.Y-l, r.Y+l]). The inputs
// are validated (NaN or infinite coordinates are rejected before any
// index is built), not copied, and must not be mutated while the
// sampler lives.
func NewSampler(R, S []Point, l float64, opts *Options) (Sampler, error) {
	if _, err := ValidatePoints(R); err != nil {
		return nil, fmt.Errorf("srj: invalid R: %w", err)
	}
	if _, err := ValidatePoints(S); err != nil {
		return nil, fmt.Errorf("srj: invalid S: %w", err)
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	cfg := core.Config{
		HalfExtent:          l,
		Seed:                o.Seed,
		WithoutReplacement:  o.WithoutReplacement,
		MaxRejects:          o.MaxRejects,
		FractionalCascading: o.FractionalCascading,
		BucketCap:           o.BucketCap,
	}
	switch o.Algorithm {
	case "", BBST:
		return core.NewBBST(R, S, cfg)
	case KDS:
		return core.NewKDS(R, S, cfg)
	case KDSRejection:
		return core.NewKDSRejection(R, S, cfg)
	case GridKD:
		return core.NewGridKD(R, S, cfg)
	case RTS:
		return core.NewRTS(R, S, cfg)
	case JoinSample:
		return core.NewJoinSample(R, S, cfg)
	default:
		return nil, fmt.Errorf("srj: unknown algorithm %q (have %v)", o.Algorithm, Algorithms())
	}
}

// Sample is the one-shot convenience API: it builds a sampler and
// draws t uniform independent join samples.
func Sample(R, S []Point, l float64, t int, opts *Options) ([]Pair, error) {
	s, err := NewSampler(R, S, l, opts)
	if err != nil {
		return nil, err
	}
	return s.Sample(t)
}

// SampleInto fills the caller-provided buffer with uniform
// independent join samples (the zero-allocation bulk API) and returns
// the number written.
func SampleInto(s Sampler, dst []Pair) (int, error) {
	return core.SampleInto(s, dst)
}

// SampleParallel draws t uniform independent join samples using the
// given number of worker goroutines. The underlying algorithm must
// support cloning (all do except KDSRejection's strawman sibling —
// see core.Cloner); sampling without replacement is not supported in
// parallel. Samples remain uniform and independent because each
// worker draws from an independent split of the random stream.
func SampleParallel(R, S []Point, l float64, t, workers int, opts *Options) ([]Pair, error) {
	s, err := NewSampler(R, S, l, opts)
	if err != nil {
		return nil, err
	}
	c, ok := s.(core.Cloner)
	if !ok {
		return nil, fmt.Errorf("srj: algorithm %s does not support parallel sampling", s.Name())
	}
	return core.ParallelSample(c, t, workers)
}

// EngineStats aggregates an Engine's request-level serving counters:
// requests, samples, failures, and cumulative/peak request latency.
type EngineStats = engine.Stats

// Engine serves many concurrent sampling requests against join
// structures that are built exactly once, preserving the paper's
// amortization (BBST: Õ(n+m) preprocessing, then Õ(1) expected time
// per sample) across requests instead of rebuilding per query as
// Sample does. Each request draws from a pooled sampler clone with a
// fresh independent random stream, so samples stay uniform and
// independent across requests, and a sequential request sequence is
// reproducible from the seed. All methods are safe for concurrent use.
type Engine struct {
	e *engine.Engine
}

// NewEngine validates R and S, builds the chosen algorithm's
// structures through the counting phase, and returns an Engine
// serving them. It fails fast with ErrEmptyJoin when the join is
// provably empty. Options.WithoutReplacement is not supported (the
// duplicate filter would need cross-request coordination). The inputs
// are not copied and must not be mutated while the Engine lives.
func NewEngine(R, S []Point, l float64, opts *Options) (*Engine, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.WithoutReplacement {
		return nil, fmt.Errorf("srj: Engine does not support WithoutReplacement")
	}
	s, err := NewSampler(R, S, l, &o)
	if err != nil {
		return nil, err
	}
	c, ok := s.(core.Cloner)
	if !ok {
		return nil, fmt.Errorf("srj: algorithm %s does not support engine serving", s.Name())
	}
	e, err := engine.New(c, o.Seed)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e}, nil
}

// Sample serves one request for t uniform independent join samples.
//
// Deprecated: use Draw — the context-first Source API adds
// cancellation and per-request seeds. Sample(t) is
// Draw(context.Background(), Request{T: t}) without the Result stats.
func (e *Engine) Sample(t int) ([]Pair, error) { return e.e.Sample(t) }

// SampleInto serves one request, filling the caller's buffer — the
// zero-allocation hot path. It returns the number of samples written.
//
// Deprecated: use Draw with Request.Into — same zero-allocation path,
// plus cancellation and per-request seeds.
func (e *Engine) SampleInto(dst []Pair) (int, error) { return e.e.SampleInto(dst) }

// SampleFunc serves one request for t samples, streaming them to fn
// in batches whose backing array is pooled and reused — fn must not
// retain the batch slice after returning.
//
// Deprecated: use DrawFunc — the same streaming path with
// cancellation between batches and per-request seeds.
func (e *Engine) SampleFunc(t int, fn func(batch []Pair) error) error {
	return e.e.SampleFunc(t, fn)
}

// Warm pre-creates n pooled sampler clones (typically one per
// expected concurrent client) so no request pays construction cost.
func (e *Engine) Warm(n int) error { return e.e.Warm(n) }

// SetMaxT caps the number of samples a single request may ask for
// (n <= 0 removes the cap). Requests over the cap fail with
// ErrSampleCap before any allocation, so a single adversarial t
// cannot OOM a serving process. srjserver sets this from its -maxt
// flag on every engine it builds.
func (e *Engine) SetMaxT(n int) { e.e.SetMaxT(n) }

// MaxT reports the per-request sample cap (0 = unlimited).
func (e *Engine) MaxT() int { return e.e.MaxT() }

// Stats snapshots the aggregate request counters.
func (e *Engine) Stats() EngineStats { return e.e.Stats() }

// Algorithm reports the underlying algorithm's name.
func (e *Engine) Algorithm() string { return e.e.Name() }

// SizeBytes estimates the retained footprint of the shared structures.
func (e *Engine) SizeBytes() int { return e.e.SizeBytes() }

// JoinSize returns |J| exactly (plane sweep; O((n+m) log(n+m) + |J|)
// time but O(1) extra space). Useful for calibrating t.
func JoinSize(R, S []Point, l float64) uint64 {
	return join.Size(R, S, l)
}

// Join enumerates the exact join result via plane sweep, calling emit
// for every pair until it returns false. This is the operation the
// sampling algorithms exist to avoid on large inputs; it is provided
// for completeness and small-input tooling.
func Join(R, S []Point, l float64, emit func(r, s Point) bool) {
	join.PlaneSweep(R, S, l, emit)
}

// Window returns the query window of half-extent l centered at p.
func Window(p Point, l float64) Rect { return geom.Window(p, l) }

// Generate produces one of the built-in synthetic datasets ("castreet",
// "foursquare", "imis", "nyc", "uniform", "gaussian") with n points on
// the [0, 10000]^2 domain, deterministic in (n, seed).
func Generate(name string, n int, seed uint64) ([]Point, error) {
	g, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return g(n, seed), nil
}

// MustGenerate is Generate but panics on an unknown dataset name.
func MustGenerate(name string, n int, seed uint64) []Point {
	pts, err := Generate(name, n, seed)
	if err != nil {
		panic(err)
	}
	return pts
}

// DatasetNames lists the built-in dataset generators.
func DatasetNames() []string { return dataset.Names() }

// SplitRS randomly assigns each point to R with probability ratio,
// re-numbering IDs densely on both sides — the paper's protocol for
// deriving R and S from one dataset (ratio 0.5 gives |R| ≈ |S|).
func SplitRS(pts []Point, ratio float64, seed uint64) (R, S []Point) {
	return dataset.SplitRS(pts, ratio, seed)
}

// EstimateJoinSize derives an unbiased estimate of |J| from a
// sampler that has already drawn samples: the acceptance rate times
// the upper-bound mass Σµ. For exact-counting algorithms (KDS, RTS,
// JoinSample) the estimate equals |J| exactly. This powers the
// cardinality-estimation use case without ever running the join.
func EstimateJoinSize(s Sampler) float64 {
	return aggregate.JoinSizeEstimate(s.Stats())
}

// ValidatePoints rejects coordinates the index structures cannot
// handle (NaN or infinite); the samplers assume finite coordinates.
// Every finite float64 — up to ±math.MaxFloat64 — is accepted. It
// returns the index of the first offending point, or -1 and nil.
// NewSampler and NewEngine call it on both inputs, so manual
// validation is only needed to locate the offending point.
func ValidatePoints(pts []Point) (int, error) {
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			return i, fmt.Errorf("point %d (ID %d) has NaN coordinates", i, p.ID)
		}
		if math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return i, fmt.Errorf("point %d (ID %d) has infinite coordinates", i, p.ID)
		}
	}
	return -1, nil
}

// LoadPoints reads a point file written by SavePoints (CSV for .csv
// paths, compact binary otherwise).
func LoadPoints(path string) ([]Point, error) { return dataset.LoadFile(path) }

// SavePoints writes points to path (CSV for .csv paths, compact
// binary otherwise).
func SavePoints(path string, pts []Point) error { return dataset.SaveFile(path, pts) }
