package srj_test

// Root-level tests of the dynamic-update stack that the conformance
// harness cannot express: the router's fleet-wide broadcast (every
// shard's store and registry must advance on a generation bump, not
// just the key's home shard), and the random-interleaving property
// test against a rebuild-from-scratch oracle.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	srj "repro"
	"repro/srjtest"
)

// TestRouterUpdateBroadcast is the invalidation acceptance test: with
// three in-process backends behind a router, one ApplyUpdate must
// reach every shard — each backend's store advances to the same
// generation, each backend's registry drops the engines the bump made
// stale, and a draw against ANY backend directly (not through the
// ring) serves the mutated dataset. That is exactly the property
// failover relies on: whichever shard a draw lands on, deleted points
// are gone.
func TestRouterUpdateBroadcast(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 200_000, BuildSeed: 31}
	addrs := startBackends(t, cfg, 3)
	rt, err := srj.NewRouter(addrs, srj.RouterOptions{HTTPClient: confTransport(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	key := srj.EngineKey{Dataset: "conf", L: l, Algorithm: "bbst", Seed: cfg.BuildSeed}
	ctx := context.Background()

	// Direct clients per backend: the test must see each shard's own
	// state, not the ring's routing.
	clients := make([]*srj.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = srj.NewClientHTTP(a, confTransport(t)).Bind(key)
	}

	// Warm a static engine on every shard (generation 0).
	for i, cl := range clients {
		if _, err := cl.Draw(ctx, srj.Request{T: 100}); err != nil {
			t.Fatalf("warming backend %d: %v", i, err)
		}
	}

	// One broadcast update: delete a point everywhere, insert a
	// far-away pair.
	victim := R[2].ID
	bound := rt.Bind(key)
	gen, err := bound.Apply(ctx, srj.Update{
		DeleteR: []int32{victim},
		InsertR: []srj.Point{{ID: 4000, X: 9000, Y: 9000}},
		InsertS: []srj.Point{{ID: 4001, X: 9001, Y: 9001}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("fleet generation %d after first update, want 1", gen)
	}

	// Every shard — probed directly — is at the fleet generation and
	// serves the mutated dataset.
	for i, cl := range clients {
		g, err := cl.Apply(ctx, srj.Update{})
		if err != nil {
			t.Fatalf("backend %d generation probe: %v", i, err)
		}
		if g != gen {
			t.Fatalf("backend %d at generation %d, fleet at %d", i, g, gen)
		}
		sawInsert := false
		res, err := cl.Draw(ctx, srj.Request{T: 30_000})
		if err != nil {
			t.Fatalf("backend %d draw: %v", i, err)
		}
		for _, p := range res.Pairs {
			if p.R.ID == victim {
				t.Fatalf("backend %d served deleted point %d", i, victim)
			}
			if p.R.ID == 4000 && p.S.ID == 4001 {
				sawInsert = true
			}
		}
		if !sawInsert {
			t.Fatalf("backend %d never served the inserted pair", i)
		}
	}

	// Every shard's registry dropped its stale generations: whatever
	// engines remain for the key carry the current generation.
	for i, a := range addrs {
		engines, err := srj.NewClientHTTP(a, confTransport(t)).Engines(ctx)
		if err != nil {
			t.Fatal(err)
		}
		current := 0
		for _, e := range engines {
			if e.Key.Dataset != key.Dataset {
				continue
			}
			if e.Key.Generation != gen {
				t.Fatalf("backend %d still holds engine %s after the bump to %d", i, e.Key, gen)
			}
			current++
		}
		if current == 0 {
			t.Fatalf("backend %d holds no engine at generation %d after drawing", i, gen)
		}
	}

	// A second bump through the router's own HTTP surface (the proxy
	// endpoint srjrouter mounts) behaves identically.
	res2, err := rt.ApplyUpdate(ctx, key, srj.Update{DeleteS: []int32{int32(4001)}})
	if err != nil {
		t.Fatal(err)
	}
	if gen2 := res2.Generation; gen2 != gen+1 {
		t.Fatalf("fleet generation %d after second update, want %d", gen2, gen+1)
	}
	for i, cl := range clients {
		res, err := cl.Draw(ctx, srj.Request{T: 20_000})
		if err != nil {
			t.Fatalf("backend %d draw: %v", i, err)
		}
		for _, p := range res.Pairs {
			if p.S.ID == 4001 || p.R.ID == 4000 {
				t.Fatalf("backend %d served pair %v after its delete", i, p)
			}
		}
	}
}

// oracleJoin enumerates the exact join of the current model sets.
func oracleJoin(R, S []srj.Point, l float64) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	srj.Join(R, S, l, func(r, s srj.Point) bool {
		out[[2]int32{r.ID, s.ID}] = true
		return true
	})
	return out
}

// TestStorePropertyAgainstOracle drives a Store through random
// interleavings of Apply and Draw and, at every step, checks it
// against a rebuild-from-scratch oracle over the same mutated point
// sets: the sample support set must stay inside the oracle join, and
// EstimateJoinSize must track the oracle's |J| within tolerance. A
// mid-sequence Compact (the background rebuild's synchronous twin)
// must be invisible to both properties.
func TestStorePropertyAgainstOracle(t *testing.T) {
	R, S, l := srjtest.Data()
	st, err := srj.NewStore(R, S, l, &srj.StoreOptions{
		Seed:               77,
		DisableAutoRebuild: true, // compaction is exercised explicitly below
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(99))
	curR, curS := R, S
	nextID := int32(20_000)

	model := func(pts []srj.Point, add []srj.Point, del []int32) []srj.Point {
		dead := map[int32]bool{}
		for _, id := range del {
			dead[id] = true
		}
		out := pts[:0:0]
		for _, p := range pts {
			if !dead[p.ID] {
				out = append(out, p)
			}
		}
		return append(out, add...)
	}

	checkStep := func(step int) {
		jset := oracleJoin(curR, curS, l)
		if len(jset) == 0 {
			t.Fatalf("step %d: test drifted into an empty join", step)
		}
		res, err := st.Draw(ctx, srj.Request{T: 3000})
		if err != nil {
			t.Fatalf("step %d: draw: %v", step, err)
		}
		for _, p := range res.Pairs {
			if !jset[[2]int32{p.R.ID, p.S.ID}] {
				t.Fatalf("step %d: sampled pair (%d,%d) not in the oracle join (|J|=%d)",
					step, p.R.ID, p.S.ID, len(jset))
			}
		}
		est, err := st.EstimateJoinSize(40_000)
		if err != nil {
			t.Fatalf("step %d: estimate: %v", step, err)
		}
		exact := float64(len(jset))
		if math.Abs(est-exact) > 0.2*exact+2 {
			t.Fatalf("step %d: join size estimate %.1f, oracle %.0f", step, est, exact)
		}
	}

	checkStep(-1)
	const steps = 18
	for step := 0; step < steps; step++ {
		u := srj.Update{}
		switch rnd.Intn(3) {
		case 0: // insert a small cluster near existing points
			for i := 0; i < 1+rnd.Intn(3); i++ {
				anchor := curS[rnd.Intn(len(curS))]
				u.InsertR = append(u.InsertR, srj.Point{ID: nextID, X: anchor.X + float64(rnd.Intn(100)), Y: anchor.Y})
				nextID++
			}
			for i := 0; i < 1+rnd.Intn(3); i++ {
				anchor := curR[rnd.Intn(len(curR))]
				u.InsertS = append(u.InsertS, srj.Point{ID: nextID, X: anchor.X, Y: anchor.Y - float64(rnd.Intn(100))})
				nextID++
			}
		case 1: // delete random live points (keep the sets non-trivial)
			if len(curR) > 20 {
				u.DeleteR = []int32{curR[rnd.Intn(len(curR))].ID}
			}
			if len(curS) > 20 {
				u.DeleteS = []int32{curS[rnd.Intn(len(curS))].ID}
			}
		case 2: // mixed batch
			anchor := curS[rnd.Intn(len(curS))]
			u.InsertR = append(u.InsertR, srj.Point{ID: nextID, X: anchor.X, Y: anchor.Y})
			nextID++
			if len(curS) > 20 {
				u.DeleteS = []int32{curS[rnd.Intn(len(curS))].ID}
			}
		}
		if u.Empty() {
			continue
		}
		if _, err := st.Apply(ctx, u); err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}
		curR = model(curR, u.InsertR, u.DeleteR)
		curS = model(curS, u.InsertS, u.DeleteS)
		checkStep(step)

		if step == steps/2 {
			// Compaction mid-sequence: everything folds into a fresh
			// base with no observable change.
			if err := st.Compact(ctx); err != nil {
				t.Fatalf("compact: %v", err)
			}
			if n := st.Pending(); n != 0 {
				t.Fatalf("pending %d after compact", n)
			}
			checkStep(step)
		}
	}
}
