package srj

import (
	"errors"
	"math"
	"testing"
)

func TestNewSamplerAllAlgorithms(t *testing.T) {
	R := MustGenerate("uniform", 500, 1)
	S := MustGenerate("uniform", 500, 2)
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			s, err := NewSampler(R, S, 200, &Options{Algorithm: algo, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := s.Sample(100)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 100 {
				t.Fatalf("got %d pairs", len(pairs))
			}
			for _, p := range pairs {
				if !Window(p.R, 200).Contains(p.S) {
					t.Fatalf("invalid pair %v", p)
				}
			}
		})
	}
}

func TestNewSamplerDefaultsToBBST(t *testing.T) {
	s, err := NewSampler(nil, nil, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "BBST" {
		t.Fatalf("default algorithm = %s", s.Name())
	}
}

func TestNewSamplerUnknownAlgorithm(t *testing.T) {
	if _, err := NewSampler(nil, nil, 10, &Options{Algorithm: "magic"}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestNewSamplerInvalidExtent(t *testing.T) {
	if _, err := NewSampler(nil, nil, 0, nil); err == nil {
		t.Fatal("zero extent should fail")
	}
	if _, err := NewSampler(nil, nil, -5, nil); err == nil {
		t.Fatal("negative extent should fail")
	}
}

func TestOneShotSample(t *testing.T) {
	R := MustGenerate("foursquare", 1000, 4)
	S := MustGenerate("foursquare", 1000, 5)
	pairs, err := Sample(R, S, 150, 50, &Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs", len(pairs))
	}
}

func TestJoinSizeAndJoinAgree(t *testing.T) {
	R := MustGenerate("uniform", 300, 7)
	S := MustGenerate("uniform", 300, 8)
	const l = 300
	want := JoinSize(R, S, l)
	var got uint64
	Join(R, S, l, func(r, s Point) bool {
		got++
		return true
	})
	if got != want {
		t.Fatalf("Join emitted %d pairs, JoinSize says %d", got, want)
	}
}

func TestEmptyJoinError(t *testing.T) {
	R := []Point{{X: 0, Y: 0, ID: 1}}
	S := []Point{{X: 9999, Y: 9999, ID: 1}}
	_, err := Sample(R, S, 1, 10, nil)
	if !errors.Is(err, ErrEmptyJoin) {
		t.Fatalf("err = %v, want ErrEmptyJoin", err)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic")
		}
	}()
	MustGenerate("nope", 10, 1)
}

func TestDatasetNamesAllGenerate(t *testing.T) {
	for _, name := range DatasetNames() {
		pts, err := Generate(name, 100, 1)
		if err != nil || len(pts) != 100 {
			t.Fatalf("%s: %v, %d points", name, err, len(pts))
		}
	}
}

func TestSplitRSRoundTrip(t *testing.T) {
	pts := MustGenerate("nyc", 2000, 9)
	R, S := SplitRS(pts, 0.5, 10)
	if len(R)+len(S) != len(pts) {
		t.Fatal("split lost points")
	}
}

func TestSaveLoadPoints(t *testing.T) {
	dir := t.TempDir()
	pts := MustGenerate("imis", 300, 11)
	path := dir + "/pts.bin"
	if err := SavePoints(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
}

func TestStatsExposed(t *testing.T) {
	R := MustGenerate("uniform", 500, 12)
	S := MustGenerate("uniform", 500, 13)
	s, err := NewSampler(R, S, 100, &Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(200); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Samples != 200 || st.Total() <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithoutReplacementOption(t *testing.T) {
	R := MustGenerate("uniform", 100, 15)
	S := MustGenerate("uniform", 100, 16)
	const l = 500
	s, err := NewSampler(R, S, l, &Options{Seed: 17, WithoutReplacement: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Sample(500)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int32]bool{}
	for _, p := range pairs {
		k := [2]int32{p.R.ID, p.S.ID}
		if seen[k] {
			t.Fatal("duplicate pair despite WithoutReplacement")
		}
		seen[k] = true
	}
}

func TestValidatePoints(t *testing.T) {
	good := MustGenerate("uniform", 100, 20)
	if i, err := ValidatePoints(good); err != nil || i != -1 {
		t.Fatalf("good points rejected: %d, %v", i, err)
	}
	bad := append([]Point(nil), good...)
	bad[42].X = math.NaN()
	if i, err := ValidatePoints(bad); err == nil || i != 42 {
		t.Fatalf("NaN not caught: %d, %v", i, err)
	}
	bad[42].X = 0
	bad[7].Y = math.Inf(1)
	if i, err := ValidatePoints(bad); err == nil || i != 7 {
		t.Fatalf("Inf not caught: %d, %v", i, err)
	}
}

// TestValidatePointsExtremes is the regression test for the old
// `x < -1e308 || x > 1e308` guard, which falsely rejected legal
// finite coordinates in (1e308, math.MaxFloat64].
func TestValidatePointsExtremes(t *testing.T) {
	finite := []Point{
		{ID: 1, X: math.MaxFloat64, Y: -math.MaxFloat64},
		{ID: 2, X: 1.5e308, Y: -1.5e308},
	}
	if i, err := ValidatePoints(finite); err != nil || i != -1 {
		t.Fatalf("finite extremes rejected: %d, %v", i, err)
	}
	for name, bad := range map[string][]Point{
		"+Inf X": {{X: math.Inf(1)}},
		"-Inf Y": {{Y: math.Inf(-1)}},
		"NaN X":  {{X: math.NaN()}},
		"NaN Y":  {{Y: math.NaN()}},
	} {
		if i, err := ValidatePoints(bad); err == nil || i != 0 {
			t.Errorf("%s not caught: %d, %v", name, i, err)
		}
	}
}

// TestNewSamplerRejectsInvalidPoints: construction must validate both
// inputs before building any index, for every algorithm.
func TestNewSamplerRejectsInvalidPoints(t *testing.T) {
	good := MustGenerate("uniform", 50, 1)
	badR := append([]Point(nil), good...)
	badR[13].X = math.NaN()
	badS := append([]Point(nil), good...)
	badS[5].Y = math.Inf(-1)
	for _, algo := range Algorithms() {
		opts := &Options{Algorithm: algo}
		if _, err := NewSampler(badR, good, 10, opts); err == nil {
			t.Errorf("%s: NaN in R accepted", algo)
		}
		if _, err := NewSampler(good, badS, 10, opts); err == nil {
			t.Errorf("%s: Inf in S accepted", algo)
		}
		if _, err := NewSampler(good, good, 10, opts); err != nil {
			t.Errorf("%s: valid input rejected: %v", algo, err)
		}
	}
	if _, err := NewEngine(badR, good, 10, nil); err == nil {
		t.Error("NewEngine: NaN in R accepted")
	}
	if _, err := NewEngine(good, badS, 10, nil); err == nil {
		t.Error("NewEngine: Inf in S accepted")
	}
}

func TestSampleParallel(t *testing.T) {
	R := MustGenerate("nyc", 5000, 21)
	S := MustGenerate("nyc", 5000, 22)
	const l = 150
	pairs, err := SampleParallel(R, S, l, 10000, 8, &Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10000 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if !Window(p.R, l).Contains(p.S) {
			t.Fatalf("invalid pair %v", p)
		}
	}
	// RTS lacks Clone (ablation); ensure the error path works.
	if _, err := SampleParallel(R, S, l, 10, 2, &Options{Algorithm: RTS}); err != nil {
		// RTS embeds KDS which has Clone; so this should actually work.
		t.Fatalf("RTS parallel failed: %v", err)
	}
	if _, err := SampleParallel(R, S, l, 10, 2, &Options{WithoutReplacement: true}); err == nil {
		t.Fatal("without-replacement parallel should fail")
	}
}

func TestEstimateJoinSize(t *testing.T) {
	R := MustGenerate("foursquare", 3000, 30)
	S := MustGenerate("foursquare", 3000, 31)
	const l = 150
	exact := float64(JoinSize(R, S, l))
	if exact == 0 {
		t.Skip("empty join in setup")
	}
	// KDS counts exactly, so the estimate is exact.
	s, err := NewSampler(R, S, l, &Options{Algorithm: KDS, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(1000); err != nil {
		t.Fatal(err)
	}
	if got := EstimateJoinSize(s); got != exact {
		t.Fatalf("KDS estimate %g != exact %g", got, exact)
	}
	// BBST estimates within a few percent at this sample count.
	b, err := NewSampler(R, S, l, &Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Sample(30000); err != nil {
		t.Fatal(err)
	}
	if got := EstimateJoinSize(b); math.Abs(got-exact)/exact > 0.1 {
		t.Fatalf("BBST estimate %g vs exact %g", got, exact)
	}
}

func TestBucketCapOption(t *testing.T) {
	R := MustGenerate("uniform", 2000, 34)
	S := MustGenerate("uniform", 2000, 35)
	const l = 200
	for _, cap := range []int{1, 4, 64} {
		s, err := NewSampler(R, S, l, &Options{Seed: 36, BucketCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := s.Sample(500)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if !Window(p.R, l).Contains(p.S) {
				t.Fatalf("cap %d: invalid pair %v", cap, p)
			}
		}
	}
	if _, err := NewSampler(R, S, l, &Options{BucketCap: -1}); err == nil {
		t.Fatal("negative BucketCap should fail")
	}
}
