package srj

// The Source conformance suite: one set of behavioral tests that
// every implementation of the contract must pass. It runs against
// the in-process Engine and against a Client bound to an engine key
// on a live HTTP server — the point of the contract is that callers
// cannot tell the two apart, so the tests are written once against
// Source and parameterized by a fixture constructor.

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/testutil"
)

// confL and the dataset below give a join of a few hundred pairs —
// small enough to enumerate exactly, big enough for a meaningful
// chi-square.
const confL = 1000.0

func confData() (R, S []Point) {
	return MustGenerate("uniform", 60, 101), MustGenerate("uniform", 60, 102)
}

// newEngineSource builds the in-process implementation.
func newEngineSource(t *testing.T, R, S []Point, l float64, maxT int, buildSeed uint64) Source {
	t.Helper()
	eng, err := NewEngine(R, S, l, &Options{Seed: buildSeed})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetMaxT(maxT)
	return eng
}

// newClientSource builds the remote implementation: a full server
// (registry + HTTP API) on an httptest listener with a Client bound
// to one engine key in front. The engine the server builds for the
// key is configured exactly like newEngineSource's, so the two
// fixtures serve the same structures.
func newClientSource(t *testing.T, R, S []Point, l float64, maxT int, buildSeed uint64) Source {
	t.Helper()
	srv, err := NewServer(&ServerOptions{
		Datasets: func(name string) ([]Point, []Point, error) {
			return R, S, nil
		},
		MaxT: maxT,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	tr := http.DefaultTransport.(*http.Transport).Clone()
	t.Cleanup(func() {
		tr.CloseIdleConnections()
		ts.Close()
	})
	cl := NewClientHTTP(ts.URL, &http.Client{Transport: tr})
	return cl.Bind(EngineKey{Dataset: "conf", L: l, Seed: buildSeed})
}

type sourceFixture struct {
	name string
	make func(t *testing.T, R, S []Point, l float64, maxT int, buildSeed uint64) Source
}

func sourceFixtures() []sourceFixture {
	return []sourceFixture{
		{"Engine", newEngineSource},
		{"Client", newClientSource},
	}
}

// TestSourceConformance is the shared suite: uniformity, equal-seed
// determinism, context cancellation, the per-request cap, malformed
// requests, and the Into buffer contract — on every implementation.
func TestSourceConformance(t *testing.T) {
	R, S := confData()
	for _, fx := range sourceFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			t.Run("uniformity", func(t *testing.T) {
				src := fx.make(t, R, S, confL, 500_000, 1)
				jset := map[[2]int32]bool{}
				Join(R, S, confL, func(r, s Point) bool {
					jset[[2]int32{r.ID, s.ID}] = true
					return true
				})
				if len(jset) < 20 || len(jset) > 2000 {
					t.Fatalf("test setup: |J| = %d not in a good range", len(jset))
				}
				const draws = 120_000
				counts := map[[2]int32]int{}
				err := src.DrawFunc(context.Background(), Request{T: draws}, func(batch []Pair) error {
					for _, p := range batch {
						k := [2]int32{p.R.ID, p.S.ID}
						if !jset[k] {
							t.Fatalf("sampled pair %v not in J", p)
						}
						if !Window(p.R, confL).Contains(p.S) {
							t.Fatalf("pair %v outside window", p)
						}
						counts[k]++
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				expected := float64(draws) / float64(len(jset))
				chi2 := 0.0
				for k := range jset {
					d := float64(counts[k]) - expected
					chi2 += d * d / expected
				}
				dof := float64(len(jset) - 1)
				// The p≈0.001 bound the in-process uniformity tests use.
				limit := dof + 4*math.Sqrt(2*dof) + 10
				if chi2 > limit {
					t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
				}
			})

			t.Run("determinism by seed", func(t *testing.T) {
				src := fx.make(t, R, S, confL, 100_000, 2)
				ctx := context.Background()
				a, err := src.Draw(ctx, Request{T: 2000, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				// Interleave unseeded traffic: it must not perturb
				// seeded draws.
				if _, err := src.Draw(ctx, Request{T: 777}); err != nil {
					t.Fatal(err)
				}
				b, err := src.Draw(ctx, Request{T: 2000, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if len(a.Pairs) != 2000 || len(b.Pairs) != 2000 {
					t.Fatalf("got %d and %d pairs", len(a.Pairs), len(b.Pairs))
				}
				for i := range a.Pairs {
					if a.Pairs[i] != b.Pairs[i] {
						t.Fatalf("equal seeds diverged at sample %d", i)
					}
				}
				// A different seed must draw a different sequence.
				c, err := src.Draw(ctx, Request{T: 2000, Seed: 43})
				if err != nil {
					t.Fatal(err)
				}
				same := 0
				for i := range a.Pairs {
					if a.Pairs[i] == c.Pairs[i] {
						same++
					}
				}
				if same > len(a.Pairs)/2 {
					t.Fatalf("distinct seeds repeated %d/%d samples", same, len(a.Pairs))
				}
			})

			t.Run("cancellation", func(t *testing.T) {
				testutil.VerifyNoLeaks(t)
				src := fx.make(t, R, S, confL, 500_000, 3)

				// Pre-canceled context: nothing is drawn.
				pre, cancelPre := context.WithCancel(context.Background())
				cancelPre()
				if _, err := src.Draw(pre, Request{T: 100}); !errors.Is(err, context.Canceled) {
					t.Fatalf("pre-canceled Draw: err = %v, want context.Canceled", err)
				}

				// Cancel mid-stream: the draw stops promptly, well
				// short of the requested count.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				const want = 400_000
				received := 0
				start := time.Now()
				err := src.DrawFunc(ctx, Request{T: want}, func(batch []Pair) error {
					received += len(batch)
					cancel()
					return nil
				})
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("mid-stream cancel: err = %v, want context.Canceled", err)
				}
				if received >= want {
					t.Fatalf("cancelled draw delivered all %d samples", received)
				}
				if elapsed := time.Since(start); elapsed > 10*time.Second {
					t.Fatalf("cancelled draw took %v to stop", elapsed)
				}
			})

			t.Run("fn error precedence", func(t *testing.T) {
				// DrawFunc returns fn's error verbatim — even in the
				// cancel-and-return-sentinel early-stop idiom, where the
				// caller's context is done by the time the error
				// surfaces.
				src := fx.make(t, R, S, confL, 500_000, 7)
				boom := errors.New("found enough")
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				err := src.DrawFunc(ctx, Request{T: 300_000}, func([]Pair) error {
					cancel()
					return boom
				})
				if !errors.Is(err, boom) {
					t.Fatalf("err = %v, want the fn error verbatim", err)
				}
			})

			t.Run("drawfunc ignores into", func(t *testing.T) {
				// A Request built for Draw streams unchanged: Into
				// never receives samples, its length is not validated
				// against T, and it still defaults T when T is zero.
				src := fx.make(t, R, S, confL, 10_000, 8)
				short := make([]Pair, 5)
				got := 0
				err := src.DrawFunc(context.Background(), Request{T: 100, Into: short}, func(batch []Pair) error {
					got += len(batch)
					return nil
				})
				if err != nil || got != 100 {
					t.Fatalf("short Into: streamed %d samples, err %v", got, err)
				}
				intoOnly := make([]Pair, 64)
				got = 0
				err = src.DrawFunc(context.Background(), Request{Into: intoOnly}, func(batch []Pair) error {
					got += len(batch)
					for _, p := range intoOnly {
						if p != (Pair{}) {
							t.Fatal("DrawFunc wrote into the Into buffer")
						}
					}
					return nil
				})
				if err != nil || got != len(intoOnly) {
					t.Fatalf("Into-only: streamed %d samples, err %v", got, err)
				}
			})

			t.Run("per-request cap", func(t *testing.T) {
				src := fx.make(t, R, S, confL, 1000, 4)
				ctx := context.Background()
				if _, err := src.Draw(ctx, Request{T: 1001}); !errors.Is(err, ErrSampleCap) {
					t.Fatalf("over-cap Draw: err = %v, want ErrSampleCap", err)
				}
				if err := src.DrawFunc(ctx, Request{T: 1001}, func([]Pair) error {
					t.Error("fn called for an over-cap draw")
					return nil
				}); !errors.Is(err, ErrSampleCap) {
					t.Fatalf("over-cap DrawFunc: err = %v, want ErrSampleCap", err)
				}
				res, err := src.Draw(ctx, Request{T: 1000})
				if err != nil || len(res.Pairs) != 1000 {
					t.Fatalf("at-cap Draw: %d pairs, %v", len(res.Pairs), err)
				}
			})

			t.Run("bad request", func(t *testing.T) {
				src := fx.make(t, R, S, confL, 1000, 5)
				ctx := context.Background()
				if _, err := src.Draw(ctx, Request{}); !errors.Is(err, ErrBadRequest) {
					t.Fatalf("zero request: err = %v, want ErrBadRequest", err)
				}
				if _, err := src.Draw(ctx, Request{T: -3}); !errors.Is(err, ErrBadRequest) {
					t.Fatalf("negative T: err = %v, want ErrBadRequest", err)
				}
				if err := src.DrawFunc(ctx, Request{T: 0}, func([]Pair) error { return nil }); !errors.Is(err, ErrBadRequest) {
					t.Fatalf("zero-T DrawFunc: err = %v, want ErrBadRequest", err)
				}
				short := make([]Pair, 5)
				if _, err := src.Draw(ctx, Request{T: 10, Into: short}); !errors.Is(err, ErrBadRequest) {
					t.Fatalf("short Into: err = %v, want ErrBadRequest", err)
				}
			})

			t.Run("into buffer", func(t *testing.T) {
				src := fx.make(t, R, S, confL, 10_000, 6)
				buf := make([]Pair, 512)
				res, err := src.Draw(context.Background(), Request{Into: buf})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Pairs) != len(buf) {
					t.Fatalf("got %d pairs, want %d", len(res.Pairs), len(buf))
				}
				if &res.Pairs[0] != &buf[0] {
					t.Fatal("Result.Pairs is not backed by Request.Into")
				}
				for _, p := range res.Pairs {
					if !Window(p.R, confL).Contains(p.S) {
						t.Fatalf("invalid pair %v", p)
					}
				}
				if res.Elapsed <= 0 {
					t.Fatalf("Elapsed = %v", res.Elapsed)
				}
			})
		})
	}
}

// TestSourceLocalRemoteAgreement is the substitutability check in its
// strongest form: the same build seed and the same request seed must
// yield byte-identical samples whether the draw is served in-process
// or over the wire.
func TestSourceLocalRemoteAgreement(t *testing.T) {
	R, S := confData()
	const buildSeed = 7
	local := newEngineSource(t, R, S, confL, 100_000, buildSeed)
	remote := newClientSource(t, R, S, confL, 100_000, buildSeed)
	ctx := context.Background()
	for _, seed := range []uint64{1, 42, 1 << 40} {
		a, err := local.Draw(ctx, Request{T: 3000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := remote.Draw(ctx, Request{T: 3000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("seed %d: local and remote diverged at sample %d: %v vs %v",
					seed, i, a.Pairs[i], b.Pairs[i])
			}
		}
	}
}

// TestClientUnbound: the Source methods of an unbound client refuse
// cleanly instead of addressing a half-empty key.
func TestClientUnbound(t *testing.T) {
	cl := NewClient("http://127.0.0.1:1")
	if _, err := cl.Draw(context.Background(), Request{T: 10}); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if err := cl.DrawFunc(context.Background(), Request{T: 10}, func([]Pair) error { return nil }); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if _, ok := cl.Key(); ok {
		t.Fatal("unbound client reports a key")
	}
	bound := cl.Bind(EngineKey{Dataset: "d", L: 1})
	if key, ok := bound.Key(); !ok || key.Algorithm != "bbst" {
		t.Fatalf("bound key = %+v, %v (want bbst default)", key, ok)
	}
	// Bind returns a copy; the original stays unbound.
	if _, ok := cl.Key(); ok {
		t.Fatal("Bind mutated its receiver")
	}
}
