package srj_test

// The Source conformance suite, instantiated. The suite itself lives
// in srjtest (one set of behavioral tests, written once against
// srj.Source); this file registers the repo's implementations — the
// in-process Engine, the mutable Store, a Client bound to an engine
// key on a live HTTP server, and a Router bound to the same key over
// a sharded fleet of three servers — so every tier answers to the
// same contract, and the mutable tiers additionally answer to the
// update-aware suite. A new tier gets the full suite by adding one
// constructor here.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	srj "repro"
	"repro/srjtest"
)

// newEngineSource builds the in-process implementation.
func newEngineSource(t *testing.T, cfg srjtest.Config) srj.Source {
	t.Helper()
	eng, err := srj.NewEngine(cfg.R, cfg.S, cfg.L, &srj.Options{Seed: cfg.BuildSeed})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetMaxT(cfg.MaxT)
	return eng
}

// newStoreUpdatable builds the mutable in-process implementation: a
// Store at generation 0 over the same structures the Engine fixture
// serves.
func newStoreUpdatable(t *testing.T, cfg srjtest.Config) srjtest.Updatable {
	t.Helper()
	st, err := srj.NewStore(cfg.R, cfg.S, cfg.L, &srj.StoreOptions{Seed: cfg.BuildSeed, MaxT: cfg.MaxT})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newStoreSource is the Store as a plain (never-mutated) Source.
func newStoreSource(t *testing.T, cfg srjtest.Config) srj.Source {
	return newStoreUpdatable(t, cfg).(*srj.Store).Bind()
}

// startBackends brings up n independent srjservers (registry + HTTP
// API, each on its own httptest listener) that all resolve every
// dataset name to cfg's point sets — the sharded-fleet invariant that
// equal keys mean equal data on every shard. It returns their base
// URLs.
func startBackends(t *testing.T, cfg srjtest.Config, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT: cfg.MaxT,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// confTransport returns an http.Client whose idle connections are
// closed on test cleanup, so the goroutine-leak checks stay quiet.
func confTransport(t *testing.T) *http.Client {
	t.Helper()
	tr := http.DefaultTransport.(*http.Transport).Clone()
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr}
}

// newClientSource builds the remote implementation: one server with a
// Client bound to one engine key in front. The engine the server
// builds for the key is configured exactly like newEngineSource's, so
// the two fixtures serve the same structures.
func newClientSource(t *testing.T, cfg srjtest.Config) srj.Source {
	t.Helper()
	addrs := startBackends(t, cfg, 1)
	cl := srj.NewClientHTTP(addrs[0], confTransport(t))
	return cl.Bind(srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed})
}

// newRouterSource builds the sharded implementation: three servers
// behind a consistent-hash Router, bound to the same engine key the
// Client fixture uses. Whichever shard the ring picks, the key's
// engine is built from the same data with the same seed — so the
// Router must be indistinguishable from the other two fixtures.
func newRouterSource(t *testing.T, cfg srjtest.Config) srj.Source {
	t.Helper()
	return newRouterSourceN(t, cfg, 3)
}

// newRouterSourceN is newRouterSource over n backends.
func newRouterSourceN(t *testing.T, cfg srjtest.Config, n int) srj.Source {
	t.Helper()
	rt, err := srj.NewRouter(startBackends(t, cfg, n), srj.RouterOptions{
		HTTPClient: confTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt.Bind(srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed})
}

// TestSourceConformance runs the shared suite over every registered
// implementation.
func TestSourceConformance(t *testing.T) {
	fixtures := []struct {
		name string
		make srjtest.MakeSource
	}{
		{"Engine", newEngineSource},
		{"Store", newStoreSource},
		{"Client", newClientSource},
		{"Router", newRouterSource},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			srjtest.RunSourceConformance(t, fx.make)
		})
	}
}

// newClientUpdatable is the remote updatable implementation: the
// bound client's Apply travels as POST /v1/update, and the server's
// dynamic store springs into existence on the first batch.
func newClientUpdatable(t *testing.T, cfg srjtest.Config) srjtest.Updatable {
	t.Helper()
	return newClientSource(t, cfg).(*srj.Client)
}

// newRouterUpdatable is the sharded updatable implementation: Apply
// broadcasts to all three backends, draws route to the key's shard.
func newRouterUpdatable(t *testing.T, cfg srjtest.Config) srjtest.Updatable {
	t.Helper()
	return newRouterSourceN(t, cfg, 3).(srjtest.Updatable)
}

// newDurableFixture builds the WAL-backed updatable implementation: a
// Client over one server persisting to a per-source data dir, plus
// the restart hook that shuts the server down and boots a fresh one
// against the same directory — the close-and-reopen proof that
// acknowledged mutations survive a process death.
func newDurableFixture() (srjtest.MakeUpdatable, srjtest.RestartUpdatable) {
	type durableState struct {
		cfg  srjtest.Config
		dir  string
		stop func()
	}
	var mu sync.Mutex
	states := map[srjtest.Updatable]*durableState{}
	open := func(t *testing.T, cfg srjtest.Config, dir string) srjtest.Updatable {
		t.Helper()
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT:    cfg.MaxT,
			DataDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			ts.Close()
			if err := srv.Close(); err != nil {
				t.Errorf("closing durable server: %v", err)
			}
		}
		t.Cleanup(stop)
		cl := srj.NewClientHTTP(ts.URL, confTransport(t)).
			Bind(srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed})
		mu.Lock()
		states[cl] = &durableState{cfg: cfg, dir: dir, stop: stop}
		mu.Unlock()
		return cl
	}
	makeUpd := func(t *testing.T, cfg srjtest.Config) srjtest.Updatable {
		return open(t, cfg, t.TempDir())
	}
	restart := func(t *testing.T, src srjtest.Updatable) srjtest.Updatable {
		t.Helper()
		mu.Lock()
		st := states[src]
		mu.Unlock()
		if st == nil {
			t.Fatal("restart of a source this fixture did not build")
		}
		st.stop()
		return open(t, st.cfg, st.dir)
	}
	return makeUpd, restart
}

// TestUpdatableConformance runs the update-aware suite over every
// tier that accepts mutations: the local Store, the Client over one
// server, the Router over a broadcast fleet of three, and the
// WAL-backed Client that additionally proves durability across a
// close-and-reopen.
func TestUpdatableConformance(t *testing.T) {
	durableMake, durableRestart := newDurableFixture()
	fixtures := []struct {
		name string
		make srjtest.MakeUpdatable
		opts []srjtest.UpdatableOption
	}{
		{"Store", newStoreUpdatable, nil},
		{"Client", newClientUpdatable, nil},
		{"Router", newRouterUpdatable, nil},
		{"DurableClient", durableMake, []srjtest.UpdatableOption{srjtest.WithRestart(durableRestart)}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			srjtest.RunUpdatableConformance(t, fx.make, fx.opts...)
		})
	}
}

// TestSourceAgreement is the substitutability check in its strongest
// form: the same build seed and the same request seed must yield
// byte-identical samples whether the draw is served in-process, over
// the wire by one server, or through the router's consistent-hash
// ring over three servers.
func TestSourceAgreement(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 7}
	local := newEngineSource(t, cfg)
	store := newStoreSource(t, cfg)
	remote := newClientSource(t, cfg)
	routed := newRouterSourceN(t, cfg, 3)
	ctx := context.Background()
	for _, seed := range []uint64{1, 42, 1 << 40} {
		a, err := local.Draw(ctx, srj.Request{T: 3000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range map[string]srj.Source{"store": store, "client": remote, "router": routed} {
			b, err := src.Draw(ctx, srj.Request{T: 3000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Pairs {
				if a.Pairs[i] != b.Pairs[i] {
					t.Fatalf("seed %d: local and %s diverged at sample %d: %v vs %v",
						seed, name, i, a.Pairs[i], b.Pairs[i])
				}
			}
		}
	}
}

// startCountedBackends is startBackends with a per-backend counter of
// /v1/sample requests, for tests asserting where draws actually land.
func startCountedBackends(t *testing.T, cfg srjtest.Config, n int) ([]string, []*atomic.Int64) {
	t.Helper()
	addrs := make([]string, n)
	hits := make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT: cfg.MaxT,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := &atomic.Int64{}
		hits[i] = h
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sample" {
				h.Add(1)
			}
			srv.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs, hits
}

// TestSourceAgreementReplicated is the replicated-reads determinism
// contract: a router spreading each key's draws across all three
// backends (ReadReplicas 3), a router pinning reads to the ring owner
// (the default), and a client talking to one backend directly must
// produce byte-identical seeded draws — the replica tie-break may
// choose any backend, never a different answer. The per-backend
// counters then prove the k=3 router actually used the whole fleet:
// with draws this equal, only the counters can tell the routers apart.
func TestSourceAgreementReplicated(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 8}
	addrs, hits := startCountedBackends(t, cfg, 3)
	newRouterK := func(k int) *srj.Router {
		rt, err := srj.NewRouter(addrs, srj.RouterOptions{
			HTTPClient:    confTransport(t),
			ProbeInterval: -1,
			ReadReplicas:  k,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}
	key := srj.EngineKey{Dataset: "conf", L: cfg.L, Seed: cfg.BuildSeed}
	k3 := newRouterK(3).Bind(key)
	k1 := newRouterK(1).Bind(key)
	direct := srj.NewClientHTTP(addrs[0], confTransport(t)).Bind(key)
	ctx := context.Background()

	// Phase one: only the k=3 router draws, so the spread assertion
	// below counts its requests alone. Distinct request seeds make the
	// deterministic tie-break walk the replica set.
	seeds := make([]uint64, 0, 32)
	for s := uint64(1); s <= 32; s++ {
		seeds = append(seeds, s*977)
	}
	replicated := make(map[uint64][]srj.Pair, len(seeds))
	for _, seed := range seeds {
		res, err := k3.Draw(ctx, srj.Request{T: 500, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d through k=3: %v", seed, err)
		}
		replicated[seed] = res.Pairs
	}
	for i, h := range hits {
		if h.Load() == 0 {
			t.Fatalf("backend %d served no draws: ReadReplicas=3 did not spread %d seeded requests", i, len(seeds))
		}
	}

	// Phase two: the same draws through the owner-pinned router and the
	// direct client must be byte-identical to the replicated answers.
	for _, seed := range seeds {
		for name, src := range map[string]srj.Source{"k=1 router": k1, "direct client": direct} {
			res, err := src.Draw(ctx, srj.Request{T: 500, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d through %s: %v", seed, name, err)
			}
			want := replicated[seed]
			if len(res.Pairs) != len(want) {
				t.Fatalf("seed %d: %s drew %d pairs, k=3 drew %d", seed, name, len(res.Pairs), len(want))
			}
			for i := range want {
				if res.Pairs[i] != want[i] {
					t.Fatalf("seed %d: %s diverged from the replicated draw at sample %d: %v vs %v",
						seed, name, i, res.Pairs[i], want[i])
				}
			}
		}
	}
}

// TestClientUnbound: the Source methods of an unbound client refuse
// cleanly instead of addressing a half-empty key.
func TestClientUnbound(t *testing.T) {
	cl := srj.NewClient("http://127.0.0.1:1")
	if _, err := cl.Draw(context.Background(), srj.Request{T: 10}); !errors.Is(err, srj.ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if err := cl.DrawFunc(context.Background(), srj.Request{T: 10}, func([]srj.Pair) error { return nil }); !errors.Is(err, srj.ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if _, ok := cl.Key(); ok {
		t.Fatal("unbound client reports a key")
	}
	bound := cl.Bind(srj.EngineKey{Dataset: "d", L: 1})
	if key, ok := bound.Key(); !ok || key.Algorithm != "bbst" {
		t.Fatalf("bound key = %+v, %v (want bbst default)", key, ok)
	}
	// Bind returns a copy; the original stays unbound.
	if _, ok := cl.Key(); ok {
		t.Fatal("Bind mutated its receiver")
	}
}
