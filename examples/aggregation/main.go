// Aggregation: spatial online aggregation over a join — another
// application from the paper's introduction. Aggregates of the join
// result (here: the mean distance between joined vessel positions and
// the fraction of pairs inside a region of interest) are estimated
// from progressively more samples, with running confidence intervals,
// instead of scanning the full (possibly billion-pair) join.
//
// On a reduced instance the example verifies the converged estimates
// against the exact aggregates.
//
// Run with:
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"
	"math"

	srj "repro"
	"repro/internal/aggregate"
)

// pairDistance is the aggregate measured over join pairs.
func pairDistance(p srj.Pair) float64 {
	return math.Hypot(p.R.X-p.S.X, p.R.Y-p.S.Y)
}

func main() {
	R := srj.MustGenerate("imis", 150_000, 1)
	S := srj.MustGenerate("imis", 150_000, 2)
	const l = 80.0

	sampler, err := srj.NewSampler(R, S, l, &srj.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	roi := srj.Rect{XMin: 2000, YMin: 2000, XMax: 6000, YMax: 6000}

	fmt.Println("online aggregation: mean pair distance and ROI fraction with 95% CIs")
	fmt.Println("  samples   mean-dist        ±CI    ROI-frac        ±CI")
	var (
		dist       aggregate.Mean
		inROI      aggregate.Proportion
		nextReport = uint64(1_000)
	)
	for i := 0; i < 1_000_000; i++ {
		p, err := sampler.Next()
		if err != nil {
			log.Fatal(err)
		}
		dist.Add(pairDistance(p))
		inROI.Add(roi.Contains(p.R))
		if dist.Count() == nextReport {
			mean, ciD := dist.Estimate()
			frac, ciF := inROI.Estimate()
			fmt.Printf("%9d  %10.3f  %9.3f  %10.4f  %9.4f\n", dist.Count(), mean, ciD, frac, ciF)
			nextReport *= 10
		}
	}

	// The sampler's own statistics yield an unbiased |J| estimate,
	// turning the ROI fraction into a scaled COUNT(*) GROUP BY region.
	jEst := aggregate.JoinSizeEstimate(sampler.Stats())
	frac, _ := inROI.Estimate()
	fmt.Printf("\nestimated |J| = %.0f; estimated pairs with r in ROI = %.0f\n", jEst, jEst*frac)

	// Exact verification on a reduced instance.
	Rs, Ss := R[:15_000], S[:15_000]
	var exactDist aggregate.Mean
	var exactROI aggregate.Proportion
	srj.Join(Rs, Ss, l, func(r, s srj.Point) bool {
		exactDist.Add(pairDistance(srj.Pair{R: r, S: s}))
		exactROI.Add(roi.Contains(r))
		return true
	})
	small, err := srj.NewSampler(Rs, Ss, l, &srj.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := small.Sample(200_000)
	if err != nil {
		log.Fatal(err)
	}
	var estDist aggregate.Mean
	var estROI aggregate.Proportion
	for _, p := range pairs {
		estDist.Add(pairDistance(p))
		estROI.Add(roi.Contains(p.R))
	}
	em, _ := exactDist.Estimate()
	sm, _ := estDist.Estimate()
	ef, _ := exactROI.Estimate()
	sf, _ := estROI.Estimate()
	fmt.Printf("\nreduced-instance check (|J| = %d):\n", exactDist.Count())
	fmt.Printf("  mean distance: exact %.3f, sampled %.3f\n", em, sm)
	fmt.Printf("  ROI fraction:  exact %.4f, sampled %.4f\n", ef, sf)
}
