// Remote serving: the paper's amortization across a process
// boundary. examples/serving amortizes the Õ(n + m) preprocessing
// across in-process requests; this example runs the full network
// stack — srj.NewServer (engine registry + HTTP API) on a local
// listener and srj.NewClient against it — so the one-time build
// serves clients that never link the index structures at all.
//
// Watch the registry counters: the first request for a key pays the
// build, every later one is a cache hit, and the streamed binary
// transport moves bulk samples without materializing them on either
// side.
//
// Run with:
//
//	go run ./examples/remote
//
// Against a real server, replace the in-process listener with
// srjserver and point srj.NewClient at its address.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	srj "repro"
)

func main() {
	ctx := context.Background()

	// Server side: usually `srjserver -n 100000`, here in-process.
	srv, err := srj.NewServer(&srj.ServerOptions{
		DatasetSize:  100_000,
		MemoryBudget: 512 << 20,       // cache at most 512 MiB of engines
		MaxT:         1_000_000,       // refuse larger requests outright
		Timeout:      5 * time.Minute, // the cold request below pays the build; don't 504 it on a slow box
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)

	cl := srj.NewClient("http://" + ln.Addr().String())
	if err := cl.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// Bind the client to one engine key and it becomes a srj.Source —
	// the same Draw/DrawFunc contract the in-process srj.Engine
	// serves, so everything below would run unchanged against a local
	// engine.
	src := cl.Bind(srj.EngineKey{Dataset: "nyc", L: 100, Algorithm: string(srj.BBST), Seed: 1})

	// Request 1: a registry miss — the server builds the BBST for
	// (nyc, 100, bbst, 1) and then streams the samples.
	start := time.Now()
	res, err := src.Draw(ctx, srj.Request{T: 100_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold request: %d samples in %v (includes the one-time build)\n",
		res.Count(), time.Since(start).Round(time.Millisecond))

	// Request 2: the same key is a cache hit; only sampling and the
	// wire remain. A nonzero Request.Seed makes the draw reproducible:
	// repeating it returns these exact samples.
	start = time.Now()
	res, err = src.Draw(ctx, srj.Request{T: 100_000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	fmt.Printf("warm request: %d samples in %v\n", res.Count(), warm.Round(time.Millisecond))

	// Large transfers can stream with constant client memory: batches
	// arrive as the server draws them, and cancelling ctx mid-stream
	// would stop both sides promptly.
	var streamed int
	err = src.DrawFunc(ctx, srj.Request{T: 500_000}, func(batch []srj.Pair) error {
		streamed += len(batch)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d samples without materializing them client-side\n", streamed)

	// The server's own accounting tells the amortization story.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d builds, %d hits, %d resident engines (%.1f MiB of %d MiB budget)\n",
		st.Registry.Builds, st.Registry.Hits, st.Registry.Entries,
		float64(st.Registry.Bytes)/(1<<20), st.Registry.Budget>>20)
	for _, e := range st.Engines {
		fmt.Printf("  engine %s: %d requests, %d samples served, avg latency %v\n",
			e.Key, e.Engine.Requests, e.Engine.Samples,
			e.Engine.AvgLatency().Round(time.Microsecond))
	}
}
