// Parallel: bulk join sampling across CPU cores. Training-data
// pipelines for learned cardinality estimators and query optimizers
// (the AI/ML-for-databases motivation in the paper's introduction)
// want tens of millions of samples; the sampling phase is embarrass-
// ingly parallel once the shared structures are built, and clones of
// a sampler share those structures while drawing from independent
// random streams — so the union of their outputs is still uniform
// and independent.
//
// Run with:
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	srj "repro"
)

func main() {
	R := srj.MustGenerate("nyc", 400_000, 1)
	S := srj.MustGenerate("nyc", 400_000, 2)
	const l = 100.0
	const t = 4_000_000

	// Sequential baseline.
	start := time.Now()
	seq, err := srj.Sample(R, S, l, t, &srj.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)

	// Parallel across all cores (structures are built once, then
	// cloned handles sample concurrently).
	workers := runtime.NumCPU()
	start = time.Now()
	par, err := srj.SampleParallel(R, S, l, t, workers, &srj.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(start)

	fmt.Printf("drew %d samples sequentially in %v\n", len(seq), seqTime.Round(time.Millisecond))
	fmt.Printf("drew %d samples with %d workers in %v (%.1fx speedup)\n",
		len(par), workers, parTime.Round(time.Millisecond),
		seqTime.Seconds()/parTime.Seconds())

	// Both streams target the same distribution: compare the mean
	// r-side x coordinate as a cheap distributional fingerprint.
	mean := func(ps []srj.Pair) float64 {
		s := 0.0
		for _, p := range ps {
			s += p.R.X
		}
		return s / float64(len(ps))
	}
	fmt.Printf("mean r.x: sequential %.2f, parallel %.2f (should agree within noise)\n",
		mean(seq), mean(par))
}
