// Sharded serving: the paper's amortization across a *fleet*. One
// srjserver amortizes each engine build across its clients;
// srj.NewRouter consistent-hashes engine keys across several servers,
// so each key's Õ(n + m) preprocessing is paid on exactly one host
// and the fleet's aggregate cache budget scales horizontally. The
// router is itself a srj.Source once bound — the same Draw/DrawFunc
// contract as srj.Engine and srj.Client — and transport failures fail
// over along the ring mid-draw without the caller noticing.
//
// Run with:
//
//	go run ./examples/router
//
// Against real servers, replace the in-process listeners with
// srjserver processes and hand srj.NewRouter their addresses — or run
// `srjrouter -backends ...` and point any plain srj.NewClient at it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	srj "repro"
)

func main() {
	ctx := context.Background()

	// The fleet: three srjservers, usually three hosts, here three
	// in-process listeners. Equal dataset names must mean equal data
	// on every shard — that is what makes shards interchangeable.
	backends := make([]string, 3)
	for i := range backends {
		srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 50_000})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv)
		backends[i] = "http://" + ln.Addr().String()
	}

	rt, err := srj.NewRouter(backends, srj.RouterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Distinct keys land on distinct shards: each build happens once,
	// on its key's home backend.
	keys := []srj.EngineKey{
		{Dataset: "nyc", L: 100, Algorithm: string(srj.BBST), Seed: 1},
		{Dataset: "castreet", L: 50, Algorithm: string(srj.BBST), Seed: 1},
		{Dataset: "uniform", L: 200, Algorithm: string(srj.BBST), Seed: 1},
		{Dataset: "nyc", L: 250, Algorithm: string(srj.BBST), Seed: 1},
	}
	for _, key := range keys {
		fmt.Printf("key %-18s -> %s\n", key, rt.Locate(key))
	}

	// Bound, the router is a Source: same contract, one more tier.
	src := rt.Bind(keys[0])
	start := time.Now()
	res, err := src.Draw(ctx, srj.Request{T: 100_000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d samples through the ring in %v (cold: includes the shard's one-time build)\n",
		res.Count(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if _, err = src.Draw(ctx, srj.Request{T: 100_000, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm repeat: %v — and equal seeds returned identical samples whichever shard served them\n",
		time.Since(start).Round(time.Millisecond))

	// Per-backend routing and per-key assignment accounting.
	for _, b := range rt.Stats().Backends {
		fmt.Printf("backend %s: healthy=%v requests=%d failures=%d failovers=%d\n",
			b.Addr, b.Healthy, b.Requests, b.Failures, b.Failovers)
	}
}
