// Heatmap: approximate (kernel) density visualization of a spatial
// range join from random samples — one of the motivating applications
// in the paper's introduction (visualization / density estimation).
//
// The full join of two NYC-like taxi datasets is far too large to
// materialize, but its spatial density is accurately recovered from a
// modest number of uniform samples. The example renders an ASCII
// heatmap of where join pairs concentrate and, on a reduced instance,
// verifies the sampled density against the exact join.
//
// Run with:
//
//	go run ./examples/heatmap
package main

import (
	"fmt"
	"log"

	srj "repro"
	"repro/internal/aggregate"
	"repro/internal/geom"
)

func main() {
	domain := geom.Rect{XMin: 0, YMin: 0, XMax: 10000, YMax: 10000}

	// Large instance: sample-only density.
	R := srj.MustGenerate("nyc", 300_000, 1)
	S := srj.MustGenerate("nyc", 300_000, 2)
	const l = 60.0

	sampler, err := srj.NewSampler(R, S, l, &srj.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := sampler.Sample(500_000)
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := aggregate.NewHistogram(domain, 64, 32)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		sampled.AddPair(p)
	}
	fmt.Println("join-density heatmap from 500k samples (600k x 600k points joined):")
	fmt.Println(sampled.Render())

	// Reduced instance: validate the sampled density against the
	// exact join.
	Rs, Ss := R[:20_000], S[:20_000]
	exact, err := aggregate.NewHistogram(domain, 64, 32)
	if err != nil {
		log.Fatal(err)
	}
	srj.Join(Rs, Ss, l, func(r, s srj.Point) bool {
		exact.AddPair(srj.Pair{R: r, S: s})
		return true
	})
	small, err := srj.NewSampler(Rs, Ss, l, &srj.Options{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	smallPairs, err := small.Sample(200_000)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := aggregate.NewHistogram(domain, 64, 32)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range smallPairs {
		approx.AddPair(p)
	}
	corr, err := exact.Correlation(approx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled-vs-exact density correlation on the reduced instance: %.4f\n", corr)
	fmt.Println("(1.0 = identical density field; random samples recover the join's shape)")
}
