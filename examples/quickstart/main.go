// Quickstart: draw uniform random samples from a spatial range join
// without computing the join.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	srj "repro"
)

func main() {
	// Two synthetic POI datasets on the [0, 10000]^2 domain. In a real
	// deployment these would be your own points; only X, Y, and a
	// caller-chosen ID are needed.
	R := srj.MustGenerate("foursquare", 200_000, 1)
	S := srj.MustGenerate("foursquare", 200_000, 2)

	// w(r) is the square window [r.X-l, r.X+l] x [r.Y-l, r.Y+l]; the
	// join J pairs every r with every s inside w(r).
	const l = 100.0

	// The default sampler is the paper's BBST algorithm: Õ(n+m+t)
	// expected time, O(n+m) space.
	sampler, err := srj.NewSampler(R, S, l, &srj.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Draw a million uniform, independent samples of J.
	pairs, err := sampler.Sample(1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("drew %d join samples; first three:\n", len(pairs))
	for _, p := range pairs[:3] {
		fmt.Printf("  r=%v  s=%v\n", p.R, p.S)
	}

	// Every sampler reports the paper's phase decomposition.
	st := sampler.Stats()
	fmt.Printf("\nphases: preprocess=%v  grid-mapping=%v  upper-bounding=%v  sampling=%v\n",
		st.PreprocessTime, st.GridMapTime, st.UpperBoundTime, st.SampleTime)
	fmt.Printf("sampling iterations: %d for %d samples (acceptance %.1f%%)\n",
		st.Iterations, st.Samples, 100*float64(st.Samples)/float64(st.Iterations))

	// Samples can also be drawn progressively (t = ∞ in the paper's
	// Definition 2): stop whenever you have enough.
	one, err := sampler.Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one more on demand: %v\n", one)
}
