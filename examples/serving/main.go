// Serving: amortizing the paper's preprocessing across a stream of
// concurrent queries. The BBST draws t samples in Õ(n + m + t) *after*
// one preprocessing pass — but the one-shot srj.Sample pays that pass
// on every call, which is exactly wrong for a service answering many
// sampling queries over the same R, S, and l (think a dashboard
// estimating join aggregates, or a training-data endpoint feeding
// learned cardinality estimators). srj.Engine builds the structures
// once; every request then draws through the context-first Source
// API — Draw with a reused Request.Into buffer is the
// zero-allocation hot path over a pooled sampler clone.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	srj "repro"
)

func main() {
	R := srj.MustGenerate("nyc", 100_000, 1)
	S := srj.MustGenerate("nyc", 100_000, 2)
	const l = 100.0
	const clients = 8         // concurrent client goroutines
	const requests = 50       // requests per client
	const perRequest = 10_000 // samples per request

	// Build once. NewEngine validates the inputs, runs the offline,
	// grid-mapping, and counting phases, and fails fast if the join is
	// provably empty.
	start := time.Now()
	eng, err := srj.NewEngine(R, S, l, &srj.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Warm(clients); err != nil { // one idle clone per client
		log.Fatal(err)
	}
	fmt.Printf("engine built once in %v (%.1f MiB shared, algorithm %s)\n",
		time.Since(start).Round(time.Millisecond),
		float64(eng.SizeBytes())/(1<<20), eng.Algorithm())

	// Serve. Every goroutine reuses one request buffer: Draw with
	// Request.Into allocates nothing per request, so the steady state
	// is pure sampling. The context would let a server cancel
	// in-flight draws; a batch job just passes Background.
	ctx := context.Background()
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]srj.Pair, perRequest)
			for req := 0; req < requests; req++ {
				if _, err := eng.Draw(ctx, srj.Request{Into: buf}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := eng.Stats()
	engineRate := float64(st.Samples) / elapsed.Seconds()
	fmt.Printf("served %d requests (%d samples) in %v\n",
		st.Requests, st.Samples, elapsed.Round(time.Millisecond))
	fmt.Printf("  %.3g samples/sec; latency avg %v, max %v\n",
		engineRate, st.AvgLatency().Round(time.Microsecond),
		st.MaxLatency.Round(time.Microsecond))

	// The naive service: rebuild all structures inside every request,
	// i.e. call the one-shot srj.Sample per query. One request is
	// enough to see why this loses.
	start = time.Now()
	if _, err := srj.Sample(R, S, l, perRequest, &srj.Options{Seed: 1}); err != nil {
		log.Fatal(err)
	}
	rebuild := time.Since(start)
	rebuildRate := float64(perRequest) / rebuild.Seconds()
	fmt.Printf("rebuild-per-request: %v per request => %.3g samples/sec (engine %.0fx faster)\n",
		rebuild.Round(time.Millisecond), rebuildRate, engineRate/rebuildRate)
}
