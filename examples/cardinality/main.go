// Cardinality: estimate spatial join sizes from the sampler's own
// acceptance statistics — the AI/ML-for-databases application the
// paper's introduction highlights (training data for learned
// cardinality estimators and query optimizers).
//
// The BBST sampler accepts each iteration with probability |J| / Σµ,
// and Σµ is known exactly after the counting phase. The acceptance
// rate therefore gives an unbiased estimate of |J| that sharpens as
// more samples are drawn — no join is ever executed. The example
// sweeps several window sizes, compares the estimates against exact
// join sizes, and emits the (l, |J|-estimate) pairs a learned
// estimator would train on.
//
// Run with:
//
//	go run ./examples/cardinality
package main

import (
	"fmt"
	"log"
	"math"

	srj "repro"
)

func main() {
	R := srj.MustGenerate("castreet", 80_000, 1)
	S := srj.MustGenerate("castreet", 80_000, 2)

	fmt.Println("   l     exact |J|     estimate      error   samples-used")
	fmt.Println("----  ------------  ------------  ---------  ------------")

	for _, l := range []float64{25, 50, 100, 200} {
		sampler, err := srj.NewSampler(R, S, l, &srj.Options{Seed: uint64(l)})
		if err != nil {
			log.Fatal(err)
		}
		const draws = 50_000
		if _, err := sampler.Sample(draws); err != nil {
			log.Fatal(err)
		}
		st := sampler.Stats()
		// acceptance = Samples/Iterations estimates |J|/Σµ.
		estimate := float64(st.Samples) / float64(st.Iterations) * st.MuSum

		exact := float64(srj.JoinSize(R, S, l))
		errPct := math.Abs(estimate-exact) / exact * 100
		fmt.Printf("%4.0f  %12.0f  %12.0f  %8.2f%%  %12d\n", l, exact, estimate, errPct, st.Samples)
	}

	fmt.Println()
	fmt.Println("The estimate needs no join execution: it falls out of the sampler's")
	fmt.Println("acceptance rate and the known upper-bound mass Σµ. A learned cardinality")
	fmt.Println("model would consume thousands of such (query, cardinality) pairs.")
}
