// Package srjtest holds the srj.Source conformance suite as a
// reusable harness: one set of behavioral tests that every
// implementation of the contract must pass, parameterized by a
// constructor. The repo's four serving tiers — the in-process
// srj.Engine, the mutable srj.Store, srj.Client.Bind over one
// srjserver, and srj.Router.Bind over a sharded fleet — all register
// here, and a new tier (an alternative transport) buys the whole
// suite by adding one MakeSource. Tiers that accept mutations also
// register for RunUpdatableConformance (see updatable.go), which
// holds the insert/delete semantics to one contract the same way.
//
// The point of the Source contract is that callers cannot tell the
// implementations apart, so the suite is written once against
// srj.Source and knows nothing about what it is driving: the
// constructor receives the datasets, the window, the per-request cap,
// and the build seed, and must return a Source serving exactly that —
// however many processes, caches, or network hops sit behind it.
package srjtest

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	srj "repro"
	"repro/internal/testutil"
)

// Config tells a MakeSource what the returned Source must serve: the
// join of R and S under half-extent L, with MaxT as the per-request
// sample cap and BuildSeed seeding the engine build (equal BuildSeeds
// must yield sources whose equal-seeded draws agree byte for byte).
type Config struct {
	R, S      []srj.Point
	L         float64
	MaxT      int
	BuildSeed uint64
}

// MakeSource builds one Source implementation for a subtest. Register
// cleanup (servers to stop, routers to close) on t; the harness calls
// each constructor inside its own subtest.
type MakeSource func(t *testing.T, cfg Config) srj.Source

// Data returns the suite's datasets and window: a join of a few
// hundred pairs — small enough to enumerate exactly, big enough for a
// meaningful chi-square. Exposed so callers (e.g. multi-source
// agreement tests) can build fixtures over the same inputs the suite
// uses.
func Data() (R, S []srj.Point, l float64) {
	return srj.MustGenerate("uniform", 60, 101), srj.MustGenerate("uniform", 60, 102), 1000.0
}

// RunSourceConformance runs the shared suite against the sources make
// constructs: uniformity, equal-seed determinism, context
// cancellation, fn error precedence, the per-request cap, malformed
// requests, and the Into buffer contract. Implementations pass all of
// it or they are not a Source.
func RunSourceConformance(t *testing.T, newSource MakeSource) {
	R, S, l := Data()

	t.Run("uniformity", func(t *testing.T) {
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 1})
		jset := map[[2]int32]bool{}
		srj.Join(R, S, l, func(r, s srj.Point) bool {
			jset[[2]int32{r.ID, s.ID}] = true
			return true
		})
		if len(jset) < 20 || len(jset) > 2000 {
			t.Fatalf("test setup: |J| = %d not in a good range", len(jset))
		}
		const draws = 120_000
		counts := map[[2]int32]int{}
		err := src.DrawFunc(context.Background(), srj.Request{T: draws}, func(batch []srj.Pair) error {
			for _, p := range batch {
				k := [2]int32{p.R.ID, p.S.ID}
				if !jset[k] {
					t.Fatalf("sampled pair %v not in J", p)
				}
				if !srj.Window(p.R, l).Contains(p.S) {
					t.Fatalf("pair %v outside window", p)
				}
				counts[k]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		expected := float64(draws) / float64(len(jset))
		chi2 := 0.0
		for k := range jset {
			d := float64(counts[k]) - expected
			chi2 += d * d / expected
		}
		dof := float64(len(jset) - 1)
		// The p≈0.001 bound the in-process uniformity tests use.
		limit := dof + 4*math.Sqrt(2*dof) + 10
		if chi2 > limit {
			t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
		}
	})

	t.Run("determinism by seed", func(t *testing.T) {
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 2})
		ctx := context.Background()
		a, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// Interleave unseeded traffic: it must not perturb seeded
		// draws.
		if _, err := src.Draw(ctx, srj.Request{T: 777}); err != nil {
			t.Fatal(err)
		}
		b, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Pairs) != 2000 || len(b.Pairs) != 2000 {
			t.Fatalf("got %d and %d pairs", len(a.Pairs), len(b.Pairs))
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("equal seeds diverged at sample %d", i)
			}
		}
		// A different seed must draw a different sequence.
		c, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := range a.Pairs {
			if a.Pairs[i] == c.Pairs[i] {
				same++
			}
		}
		if same > len(a.Pairs)/2 {
			t.Fatalf("distinct seeds repeated %d/%d samples", same, len(a.Pairs))
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		testutil.VerifyNoLeaks(t)
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 3})

		// Pre-canceled context: nothing is drawn.
		pre, cancelPre := context.WithCancel(context.Background())
		cancelPre()
		if _, err := src.Draw(pre, srj.Request{T: 100}); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled Draw: err = %v, want context.Canceled", err)
		}

		// Cancel mid-stream: the draw stops promptly, well short of
		// the requested count.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const want = 400_000
		received := 0
		start := time.Now()
		err := src.DrawFunc(ctx, srj.Request{T: want}, func(batch []srj.Pair) error {
			received += len(batch)
			cancel()
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-stream cancel: err = %v, want context.Canceled", err)
		}
		if received >= want {
			t.Fatalf("cancelled draw delivered all %d samples", received)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancelled draw took %v to stop", elapsed)
		}
	})

	t.Run("fn error precedence", func(t *testing.T) {
		// DrawFunc returns fn's error verbatim — even in the
		// cancel-and-return-sentinel early-stop idiom, where the
		// caller's context is done by the time the error surfaces.
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 7})
		boom := errors.New("found enough")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		err := src.DrawFunc(ctx, srj.Request{T: 300_000}, func([]srj.Pair) error {
			cancel()
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the fn error verbatim", err)
		}
	})

	t.Run("drawfunc ignores into", func(t *testing.T) {
		// A Request built for Draw streams unchanged: Into never
		// receives samples, its length is not validated against T, and
		// it still defaults T when T is zero.
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 10_000, BuildSeed: 8})
		short := make([]srj.Pair, 5)
		got := 0
		err := src.DrawFunc(context.Background(), srj.Request{T: 100, Into: short}, func(batch []srj.Pair) error {
			got += len(batch)
			return nil
		})
		if err != nil || got != 100 {
			t.Fatalf("short Into: streamed %d samples, err %v", got, err)
		}
		intoOnly := make([]srj.Pair, 64)
		got = 0
		err = src.DrawFunc(context.Background(), srj.Request{Into: intoOnly}, func(batch []srj.Pair) error {
			got += len(batch)
			for _, p := range intoOnly {
				if p != (srj.Pair{}) {
					t.Fatal("DrawFunc wrote into the Into buffer")
				}
			}
			return nil
		})
		if err != nil || got != len(intoOnly) {
			t.Fatalf("Into-only: streamed %d samples, err %v", got, err)
		}
	})

	t.Run("per-request cap", func(t *testing.T) {
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 1000, BuildSeed: 4})
		ctx := context.Background()
		if _, err := src.Draw(ctx, srj.Request{T: 1001}); !errors.Is(err, srj.ErrSampleCap) {
			t.Fatalf("over-cap Draw: err = %v, want ErrSampleCap", err)
		}
		if err := src.DrawFunc(ctx, srj.Request{T: 1001}, func([]srj.Pair) error {
			t.Error("fn called for an over-cap draw")
			return nil
		}); !errors.Is(err, srj.ErrSampleCap) {
			t.Fatalf("over-cap DrawFunc: err = %v, want ErrSampleCap", err)
		}
		res, err := src.Draw(ctx, srj.Request{T: 1000})
		if err != nil || len(res.Pairs) != 1000 {
			t.Fatalf("at-cap Draw: %d pairs, %v", len(res.Pairs), err)
		}
	})

	t.Run("bad request", func(t *testing.T) {
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 1000, BuildSeed: 5})
		ctx := context.Background()
		if _, err := src.Draw(ctx, srj.Request{}); !errors.Is(err, srj.ErrBadRequest) {
			t.Fatalf("zero request: err = %v, want ErrBadRequest", err)
		}
		if _, err := src.Draw(ctx, srj.Request{T: -3}); !errors.Is(err, srj.ErrBadRequest) {
			t.Fatalf("negative T: err = %v, want ErrBadRequest", err)
		}
		if err := src.DrawFunc(ctx, srj.Request{T: 0}, func([]srj.Pair) error { return nil }); !errors.Is(err, srj.ErrBadRequest) {
			t.Fatalf("zero-T DrawFunc: err = %v, want ErrBadRequest", err)
		}
		short := make([]srj.Pair, 5)
		if _, err := src.Draw(ctx, srj.Request{T: 10, Into: short}); !errors.Is(err, srj.ErrBadRequest) {
			t.Fatalf("short Into: err = %v, want ErrBadRequest", err)
		}
	})

	t.Run("into buffer", func(t *testing.T) {
		src := newSource(t, Config{R: R, S: S, L: l, MaxT: 10_000, BuildSeed: 6})
		buf := make([]srj.Pair, 512)
		res, err := src.Draw(context.Background(), srj.Request{Into: buf})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) != len(buf) {
			t.Fatalf("got %d pairs, want %d", len(res.Pairs), len(buf))
		}
		if &res.Pairs[0] != &buf[0] {
			t.Fatal("Result.Pairs is not backed by Request.Into")
		}
		for _, p := range res.Pairs {
			if !srj.Window(p.R, l).Contains(p.S) {
				t.Fatalf("invalid pair %v", p)
			}
		}
		if res.Elapsed <= 0 {
			t.Fatalf("Elapsed = %v", res.Elapsed)
		}
	})
}
