package srjtest

// The update-aware half of the conformance harness. An updatable
// source is a Source whose dataset accepts insert/delete batches:
// the local srj.Store, a Client bound to a key on a server with
// dynamic stores, and a Router bound to the same key over a
// broadcast fleet. The suite holds all of them to identical
// semantics: uniform over the join of the *current* point sets,
// never a deleted pair, reproducible seeds within one generation,
// and a generation bump visible after every non-empty Apply.
//
// Scripted updates stay well under the default compaction threshold
// (25% of the base point count) so no background rebuild races the
// subtests' draws — determinism within a generation is exactly what
// the contract promises, and a rebuild bumps the generation.

import (
	"context"
	"errors"
	"math"
	"testing"

	srj "repro"
)

// Updatable is a Source plus the mutation half of the contract.
// srj.Store implements it directly; the bound Client and Router
// implement it over POST /v1/update.
type Updatable interface {
	srj.Source
	// Apply absorbs one batch and returns the new dataset
	// generation; an empty batch probes the current generation
	// without bumping it.
	Apply(ctx context.Context, u srj.Update) (uint64, error)
}

// MakeUpdatable builds one Updatable implementation for a subtest
// over cfg's initial point sets. Register cleanup on t; the harness
// calls each constructor inside its own subtest.
type MakeUpdatable func(t *testing.T, cfg Config) Updatable

// RestartUpdatable closes src and reopens the same underlying dataset
// from its durable state — e.g. shutting a server down and booting a
// fresh one against the same data directory. The returned source must
// serve the state src had acknowledged, not the seed data.
type RestartUpdatable func(t *testing.T, src Updatable) Updatable

// UpdatableOption configures RunUpdatableConformance.
type UpdatableOption func(*updatableOptions)

type updatableOptions struct {
	restart RestartUpdatable
}

// WithRestart opts the implementation into the durability subtest:
// restart is called after a scripted mutation sequence, and the
// reopened source must still satisfy the mutation contract — deletes
// stay deleted, inserts stay present, updates keep applying.
func WithRestart(restart RestartUpdatable) UpdatableOption {
	return func(o *updatableOptions) { o.restart = restart }
}

// updateScript returns the suite's scripted mutation sequence over
// the Data() point sets, alongside the point sets it leaves current.
// The script exercises every op kind: base deletes on both sides,
// inserts that join (so every delta component carries mass), a
// delete of a previously inserted point, and a re-insert of a
// deleted base ID.
func updateScript(R, S []srj.Point, l float64) (script []srj.Update, curR, curS []srj.Point) {
	u1 := srj.Update{
		DeleteR: []int32{R[0].ID, R[7].ID},
		DeleteS: []int32{S[3].ID},
	}
	for i := 0; i < 5; i++ {
		u1.InsertR = append(u1.InsertR, srj.Point{ID: int32(9000 + i), X: S[2*i].X + l/5, Y: S[2*i].Y - l/7})
		u1.InsertS = append(u1.InsertS, srj.Point{ID: int32(9500 + i), X: R[3*i+1].X - l/6, Y: R[3*i+1].Y + l/8})
	}
	u2 := srj.Update{
		DeleteR: []int32{9001},                                    // drop a buffered insert
		InsertR: []srj.Point{{ID: R[0].ID, X: S[5].X, Y: S[5].Y}}, // re-insert a deleted base ID elsewhere
		DeleteS: []int32{S[11].ID},
	}
	script = []srj.Update{u1, u2}
	curR, curS = R, S
	for _, u := range script {
		curR = modelApply(curR, u.InsertR, u.DeleteR)
		curS = modelApply(curS, u.InsertS, u.DeleteS)
	}
	return script, curR, curS
}

// modelApply mirrors the Store's delete-then-insert batch semantics
// on a plain slice: the test-side model of the current point set.
func modelApply(pts, add []srj.Point, del []int32) []srj.Point {
	dead := map[int32]bool{}
	for _, id := range del {
		dead[id] = true
	}
	out := pts[:0:0]
	for _, p := range pts {
		if !dead[p.ID] {
			out = append(out, p)
		}
	}
	return append(out, add...)
}

// applyScript runs the script, asserting the generation bumps after
// every batch.
func applyScript(t *testing.T, src Updatable, script []srj.Update) {
	t.Helper()
	ctx := context.Background()
	gen, err := src.Apply(ctx, srj.Update{})
	if err != nil {
		t.Fatalf("generation probe: %v", err)
	}
	for i, u := range script {
		next, err := src.Apply(ctx, u)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if next <= gen {
			t.Fatalf("apply %d: generation %d did not advance past %d", i, next, gen)
		}
		gen = next
	}
}

// RunUpdatableConformance runs the update-aware suite against the
// sources make constructs: post-script uniformity (chi-square against
// the brute-force join of the current point sets), the
// no-deleted-pair guarantee, equal-seed determinism within one
// generation, and generation visibility. Implementations pass all of
// it or they are not an updatable Source.
func RunUpdatableConformance(t *testing.T, newUpdatable MakeUpdatable, opts ...UpdatableOption) {
	var o updatableOptions
	for _, opt := range opts {
		opt(&o)
	}
	R, S, l := Data()

	t.Run("generation visibility", func(t *testing.T) {
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 11})
		ctx := context.Background()
		g0, err := src.Apply(ctx, srj.Update{})
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		// An empty update never bumps.
		if g, err := src.Apply(ctx, srj.Update{}); err != nil || g != g0 {
			t.Fatalf("second probe: gen %d (was %d), err %v", g, g0, err)
		}
		g1, err := src.Apply(ctx, srj.Update{InsertR: []srj.Point{{ID: 7777, X: S[0].X, Y: S[0].Y}}})
		if err != nil {
			t.Fatal(err)
		}
		if g1 <= g0 {
			t.Fatalf("insert did not bump the generation: %d after %d", g1, g0)
		}
		g2, err := src.Apply(ctx, srj.Update{DeleteR: []int32{7777}})
		if err != nil {
			t.Fatal(err)
		}
		if g2 <= g1 {
			t.Fatalf("delete did not bump the generation: %d after %d", g2, g1)
		}
		// The bump is visible to sampling immediately: the deleted
		// point never appears again.
		err = src.DrawFunc(ctx, srj.Request{T: 20_000}, func(batch []srj.Pair) error {
			for _, p := range batch {
				if p.R.ID == 7777 {
					t.Fatal("deleted insert 7777 sampled after its delete")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("uniformity after updates", func(t *testing.T) {
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 12})
		script, curR, curS := updateScript(R, S, l)
		applyScript(t, src, script)

		jset := map[[2]int32]bool{}
		srj.Join(curR, curS, l, func(r, s srj.Point) bool {
			jset[[2]int32{r.ID, s.ID}] = true
			return true
		})
		if len(jset) < 50 || len(jset) > 5000 {
			t.Fatalf("test setup: |J| = %d not in a good range", len(jset))
		}
		// The deltas must carry real mass, or the suite would pass on
		// an implementation that ignores inserts.
		deltaPairs := 0
		for k := range jset {
			if k[0] >= 9000 || k[1] >= 9000 {
				deltaPairs++
			}
		}
		if deltaPairs < 5 {
			t.Fatalf("test setup: only %d join pairs touch inserted points", deltaPairs)
		}

		const draws = 150_000
		counts := map[[2]int32]int{}
		err := src.DrawFunc(context.Background(), srj.Request{T: draws}, func(batch []srj.Pair) error {
			for _, p := range batch {
				k := [2]int32{p.R.ID, p.S.ID}
				if !jset[k] {
					t.Fatalf("sampled pair %v not in the current join", k)
				}
				if !srj.Window(p.R, l).Contains(p.S) {
					t.Fatalf("pair %v outside window", p)
				}
				counts[k]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		expected := float64(draws) / float64(len(jset))
		chi2 := 0.0
		for k := range jset {
			d := float64(counts[k]) - expected
			chi2 += d * d / expected
		}
		dof := float64(len(jset) - 1)
		// The p≈0.001 bound the static uniformity subtests use.
		limit := dof + 4*math.Sqrt(2*dof) + 10
		if chi2 > limit {
			t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
		}
	})

	t.Run("no deleted pair", func(t *testing.T) {
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 13})
		ctx := context.Background()
		// Establish that the victims participate in the join before
		// the delete — otherwise the subtest would pass vacuously.
		victims := map[int32]bool{R[1].ID: true, R[4].ID: true}
		victimS := map[int32]bool{S[6].ID: true}
		seen := 0
		err := src.DrawFunc(ctx, srj.Request{T: 30_000}, func(batch []srj.Pair) error {
			for _, p := range batch {
				if victims[p.R.ID] || victimS[p.S.ID] {
					seen++
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen == 0 {
			t.Fatal("test setup: victims never sampled before their delete")
		}
		u := srj.Update{DeleteS: []int32{S[6].ID}}
		for id := range victims {
			u.DeleteR = append(u.DeleteR, id)
		}
		if _, err := src.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
		err = src.DrawFunc(ctx, srj.Request{T: 150_000}, func(batch []srj.Pair) error {
			for _, p := range batch {
				if victims[p.R.ID] || victimS[p.S.ID] {
					t.Fatalf("deleted pair sampled: (%d,%d)", p.R.ID, p.S.ID)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("determinism within generation", func(t *testing.T) {
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 100_000, BuildSeed: 14})
		script, _, _ := updateScript(R, S, l)
		applyScript(t, src, script)
		ctx := context.Background()
		a, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// Interleaved unseeded traffic must not perturb seeded draws.
		if _, err := src.Draw(ctx, srj.Request{T: 555}); err != nil {
			t.Fatal(err)
		}
		b, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Pairs) != 2000 || len(b.Pairs) != 2000 {
			t.Fatalf("got %d and %d pairs", len(a.Pairs), len(b.Pairs))
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("equal seeds diverged at sample %d within one generation", i)
			}
		}
		c, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := range a.Pairs {
			if a.Pairs[i] == c.Pairs[i] {
				same++
			}
		}
		if same > len(a.Pairs)/2 {
			t.Fatalf("distinct seeds repeated %d/%d samples", same, len(a.Pairs))
		}
		// A mutation starts a new generation: the same seed may draw a
		// different sequence, but the request must still serve the
		// mutated dataset (no stale structures).
		if _, err := src.Apply(ctx, srj.Update{DeleteR: []int32{a.Pairs[0].R.ID}}); err != nil {
			t.Fatal(err)
		}
		d, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range d.Pairs {
			if p.R.ID == a.Pairs[0].R.ID {
				t.Fatalf("sample %d serves the point deleted one generation ago", i)
			}
		}
	})

	t.Run("sustained churn", func(t *testing.T) {
		// Hundreds of small batches with roughly constant cardinality —
		// the steady-churn regime in-place maintenance is built for. The
		// source must come out of it still uniform over the brute-force
		// join of the final point sets (an implementation whose
		// incremental weight updates drift would skew here long before
		// any single-batch subtest notices) and still deterministic
		// under equal seeds.
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 17})
		ctx := context.Background()
		curR, curS := R, S
		const (
			rounds = 250
			window = 40 // live churn inserts per side at steady state
		)
		for i := 0; i < rounds; i++ {
			u := srj.Update{
				InsertR: []srj.Point{{ID: int32(20_000 + i), X: S[(2*i)%len(S)].X + l/5, Y: S[(2*i)%len(S)].Y - l/7}},
				InsertS: []srj.Point{{ID: int32(30_000 + i), X: R[(3*i)%len(R)].X - l/6, Y: R[(3*i)%len(R)].Y + l/8}},
			}
			if i >= window {
				u.DeleteR = []int32{int32(20_000 + i - window)}
				u.DeleteS = []int32{int32(30_000 + i - window)}
			}
			if _, err := src.Apply(ctx, u); err != nil {
				t.Fatalf("churn apply %d: %v", i, err)
			}
			curR = modelApply(curR, u.InsertR, u.DeleteR)
			curS = modelApply(curS, u.InsertS, u.DeleteS)
		}

		jset := map[[2]int32]bool{}
		srj.Join(curR, curS, l, func(r, s srj.Point) bool {
			jset[[2]int32{r.ID, s.ID}] = true
			return true
		})
		if len(jset) < 50 || len(jset) > 20_000 {
			t.Fatalf("test setup: |J| = %d not in a good range", len(jset))
		}
		churnPairs := 0
		for k := range jset {
			if k[0] >= 20_000 || k[1] >= 30_000 {
				churnPairs++
			}
		}
		if churnPairs < 5 {
			t.Fatalf("test setup: only %d join pairs touch churned points", churnPairs)
		}

		const draws = 150_000
		counts := map[[2]int32]int{}
		err := src.DrawFunc(ctx, srj.Request{T: draws}, func(batch []srj.Pair) error {
			for _, p := range batch {
				k := [2]int32{p.R.ID, p.S.ID}
				if !jset[k] {
					t.Fatalf("sampled pair %v not in the post-churn join", k)
				}
				counts[k]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		expected := float64(draws) / float64(len(jset))
		chi2 := 0.0
		for k := range jset {
			d := float64(counts[k]) - expected
			chi2 += d * d / expected
		}
		dof := float64(len(jset) - 1)
		limit := dof + 4*math.Sqrt(2*dof) + 10
		if chi2 > limit {
			t.Fatalf("post-churn distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
		}

		// Equal seeds still replay within the settled generation.
		a, err := src.Draw(ctx, srj.Request{T: 1500, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		b, err := src.Draw(ctx, srj.Request{T: 1500, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("equal seeds diverged at sample %d after sustained churn", i)
			}
		}
	})

	if o.restart != nil {
		t.Run("durability across restart", func(t *testing.T) {
			src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 500_000, BuildSeed: 16})
			ctx := context.Background()
			// Mutations an implementation could fake from seed data are
			// useless here: delete base points that join, insert a
			// far-away cluster, then delete one of the inserts — the
			// reopened source must reflect all of it.
			// R and S IDs overlap in Data(), so the victim sets are
			// per-side — exactly like the "no deleted pair" subtest.
			victimR := map[int32]bool{R[1].ID: true}
			victimS := map[int32]bool{S[6].ID: true}
			if _, err := src.Apply(ctx, srj.Update{
				DeleteR: []int32{R[1].ID},
				DeleteS: []int32{S[6].ID},
				InsertR: []srj.Point{{ID: 8800, X: S[9].X + l/4, Y: S[9].Y}},
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := src.Apply(ctx, srj.Update{
				InsertR: []srj.Point{{ID: 8801, X: S[10].X - l/3, Y: S[10].Y}},
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := src.Apply(ctx, srj.Update{DeleteR: []int32{8801}}); err != nil {
				t.Fatal(err)
			}

			reopened := o.restart(t, src)
			sawInsert := false
			err := reopened.DrawFunc(ctx, srj.Request{T: 150_000}, func(batch []srj.Pair) error {
				for _, p := range batch {
					if victimR[p.R.ID] || victimS[p.S.ID] {
						t.Fatalf("deleted pair (%d,%d) resurrected by restart", p.R.ID, p.S.ID)
					}
					if p.R.ID == 8801 {
						t.Fatal("tombstoned insert 8801 resurrected by restart")
					}
					if p.R.ID == 8800 {
						sawInsert = true
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sawInsert {
				t.Fatal("surviving insert 8800 lost across restart")
			}
			// The sequence keeps moving: a post-restart delete lands and
			// is immediately visible.
			if _, err := reopened.Apply(ctx, srj.Update{DeleteR: []int32{8800}}); err != nil {
				t.Fatalf("post-restart update: %v", err)
			}
			err = reopened.DrawFunc(ctx, srj.Request{T: 50_000}, func(batch []srj.Pair) error {
				for _, p := range batch {
					if p.R.ID == 8800 {
						t.Fatal("point deleted after restart still sampled")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("bad update", func(t *testing.T) {
		// Non-finite inserts are refused with ErrBadRequest — the same
		// sentinel locally and over the wire — and refuse atomically:
		// the generation does not move.
		src := newUpdatable(t, Config{R: R, S: S, L: l, MaxT: 10_000, BuildSeed: 15})
		ctx := context.Background()
		g0, err := src.Apply(ctx, srj.Update{})
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		bad := srj.Update{InsertR: []srj.Point{{ID: 1, X: math.NaN(), Y: 0}}}
		if _, err := src.Apply(ctx, bad); !errors.Is(err, srj.ErrBadRequest) {
			t.Fatalf("NaN insert: err = %v, want ErrBadRequest", err)
		}
		if g, err := src.Apply(ctx, srj.Update{}); err != nil || g != g0 {
			t.Fatalf("rejected update moved the generation: %d (was %d), err %v", g, g0, err)
		}
	})
}
