package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	srj "repro"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range srj.DatasetNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s", name)
		}
	}
}

func TestGenerateWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.bin")
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nyc", "-n", "500", "-seed", "3", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	pts, err := srj.LoadPoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	// Same seed must regenerate identical data.
	path2 := filepath.Join(dir, "pts2.bin")
	if err := run([]string{"-dataset", "nyc", "-n", "500", "-seed", "3", "-out", path2}, &out); err != nil {
		t.Fatal(err)
	}
	pts2, err := srj.LoadPoints(path2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("same-seed outputs differ")
		}
	}
}

func TestGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	var out bytes.Buffer
	if err := run([]string{"-dataset", "uniform", "-n", "50", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	pts, err := srj.LoadPoints(path)
	if err != nil || len(pts) != 50 {
		t.Fatalf("csv round trip: %v, %d", err, len(pts))
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run([]string{"-out", "x.bin", "-n", "-5"}, &out); err == nil {
		t.Error("negative -n should fail")
	}
	if err := run([]string{"-out", "x.bin", "-dataset", "bogus"}, &out); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.bin", "-n", "1"}, &out); err == nil {
		t.Error("unwritable path should fail")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
