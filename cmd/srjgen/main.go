// Command srjgen generates the synthetic spatial datasets used by the
// experiments and writes them to disk.
//
// Usage:
//
//	srjgen -dataset nyc -n 1000000 -seed 1 -out nyc.bin
//	srjgen -dataset castreet -n 100000 -out castreet.csv   # CSV via extension
//	srjgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	srj "repro"
)

// run executes srjgen with explicit arguments and output streams so
// tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srjgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		name = fs.String("dataset", "uniform", "dataset family to generate ("+strings.Join(srj.DatasetNames(), ", ")+")")
		n    = fs.Int("n", 100000, "number of points")
		seed = fs.Uint64("seed", 1, "generator seed (same seed = same points)")
		out  = fs.String("out", "", "output path (.csv for text, anything else for compact binary); required")
		list = fs.Bool("list", false, "list available dataset families and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range srj.DatasetNames() {
			fmt.Fprintln(stdout, d)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required (see -h)")
	}
	if *n < 0 {
		return fmt.Errorf("-n must be non-negative")
	}
	pts, err := srj.Generate(*name, *n, *seed)
	if err != nil {
		return err
	}
	if err := srj.SavePoints(*out, pts); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	fmt.Fprintf(stdout, "wrote %d %s points to %s\n", len(pts), *name, *out)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "srjgen: %v\n", err)
		os.Exit(1)
	}
}
