// Command srjlint is the repository's custom static-analysis suite:
// five analyzers that machine-check invariants the serving stack
// depends on (per-batch context checks in draw loops, seeded-rng
// determinism, wire/sentinel exhaustiveness, key normalization, and
// snapshot immutability after an atomic publish). It speaks the
// `go vet -vettool` unit protocol, so it runs over the whole module
// with vet's caching and package loading:
//
//	go build -o srjlint ./cmd/srjlint
//	go vet -vettool=./srjlint ./...
//
// Individual analyzers can be disabled with their flag
// (-snapshotmutate=false), and single findings suppressed in source
// with `//lint:allow <analyzer> <reason>` — the reason is mandatory.
// See internal/lint and the README's "Static analysis" section.
package main

import "repro/internal/lint"

func main() { lint.Main() }
