// Command srjrouter shards the srjserver sampling API across a fleet
// of backends: a consistent-hash ring assigns each (dataset, l,
// algorithm, seed) engine key one home backend, so every key's
// preprocessing is paid on exactly one host and the fleet's aggregate
// engine-cache budget scales horizontally. Transport failures fail
// over along the ring mid-stream; semantic errors (caps, bad keys)
// surface unchanged. Clients speak the unmodified srjserver wire
// protocol — point srj.NewClient (or srjbench -remote) at the router
// and nothing else changes.
//
// Usage:
//
//	srjrouter -backends http://s0:8080,http://s1:8080,http://s2:8080
//	srjrouter -addr :9090 -backends ... -vnodes 128 -probe-interval 2s
//	srjrouter http://s0:8080 http://s1:8080        # backends as args
//	srjrouter -read-replicas 3 -backends ...       # spread reads over 3 nodes
//
// Admin mode talks to a *running* router instead of starting one —
// live ring membership without a restart:
//
//	srjrouter -admin http://router:8090 add http://s3:8080
//	srjrouter -admin http://router:8090 remove http://s1:8080
//
// API: srjserver's surface fleet-wide — POST /v1/sample (JSON or
// framed binary), POST /v1/update (insert/delete batches broadcast to
// every shard, so each backend's store and engine cache advance to
// the same dataset generation), GET /v1/stats (fleet aggregate in
// srjserver's shape), GET/DELETE /v1/engines (concatenated list /
// broadcast eviction), GET /healthz (200 while any backend answers) —
// plus GET /v1/router for routing stats (per-backend health and
// counters, per-key shard assignments), POST/DELETE
// /v1/router/backends for live ring membership (what -admin calls),
// and GET /metrics (Prometheus text exposition; -pprof additionally
// mounts /debug/pprof/).
// -log-level info enables structured JSON access logs with request
// IDs; failovers log at warn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	srj "repro"
)

// run is the testable entry point: parse args, bring the router up,
// report the bound address through ready (tests pass ":0"), serve
// until ctx is cancelled.
func run(ctx context.Context, args []string, stdout io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("srjrouter", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", ":8090", "listen address")
		backends = fs.String("backends", "", "comma-separated srjserver base URLs (or pass them as arguments)")
		vnodes   = fs.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 64)")
		probe    = fs.Duration("probe-interval", 0, "backend /healthz probe cadence (0 = default 5s, negative disables)")
		pprof    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel = fs.String("log-level", "warn", "structured log level: debug, info, warn, error, off")
		replicas = fs.Int("read-replicas", 0, "spread each key's draws across its first k healthy ring nodes (0 = default 1)")
		admin    = fs.Bool("admin", false, "admin client mode: srjrouter -admin <router-url> add|remove <backend-url>")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *admin {
		return runAdmin(ctx, fs.Args(), stdout)
	}
	logger, err := buildLogger(*logLevel, stdout)
	if err != nil {
		return err
	}
	var list []string
	for _, part := range strings.Split(*backends, ",") {
		if part = strings.TrimSpace(part); part != "" {
			list = append(list, part)
		}
	}
	list = append(list, fs.Args()...)
	if len(list) == 0 {
		return fmt.Errorf("no backends: pass -backends or list srjserver URLs as arguments")
	}

	rt, err := srj.NewRouter(list, srj.RouterOptions{
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		ReadReplicas:  *replicas,
		Logger:        logger,
		EnablePprof:   *pprof,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	// Probe once up front so the startup log tells the operator what
	// the ring can actually reach — but serve regardless: backends may
	// simply not be up yet, and the prober will find them.
	healthy := rt.ProbeNow(ctx)
	fmt.Fprintf(stdout, "srjrouter: %d/%d backends healthy\n", healthy, len(list))
	for _, b := range rt.Backends() {
		fmt.Fprintf(stdout, "  backend %s\n", b)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "srjrouter listening on %s (%d backends)\n", ln.Addr(), len(list))
	if ready != nil {
		ready(ln.Addr().String())
	}

	// As in srjserver: no blanket WriteTimeout — the sample proxy sets
	// per-frame write deadlines itself.
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// runAdmin is the -admin client mode: one membership change against a
// running router's POST/DELETE /v1/router/backends endpoint, printing
// the resulting ring. Adds block until the router has probed the new
// node and transferred every dataset's state, so a zero exit means
// the backend is serving.
func runAdmin(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) != 3 {
		return fmt.Errorf("admin mode: srjrouter -admin <router-url> add|remove <backend-url>")
	}
	routerURL, action, backend := args[0], args[1], args[2]
	cl := srj.NewClient(routerURL)
	var ring []string
	var err error
	switch action {
	case "add":
		ring, err = cl.AddRouterBackend(ctx, backend)
	case "remove":
		ring, err = cl.RemoveRouterBackend(ctx, backend)
	default:
		return fmt.Errorf("admin mode: unknown action %q (want add or remove)", action)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ring now has %d backends\n", len(ring))
	for _, b := range ring {
		fmt.Fprintf(stdout, "  backend %s\n", b)
	}
	return nil
}

// buildLogger returns the process logger writing JSON lines to w at
// the requested level, nil for "off", or an error for an unknown
// level name.
func buildLogger(levelFlag string, w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(levelFlag) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, error, or off; got %q", levelFlag)
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})), nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "srjrouter: %v\n", err)
		os.Exit(1)
	}
}
