package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	srj "repro"
)

// startBackends brings up n in-process srjservers over small built-in
// datasets and returns their base URLs.
func startBackends(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 2000, MaxT: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// TestLiveMembership is the ring-resize e2e: a two-backend fleet
// takes sequenced updates, a third backend joins the live ring
// through the -admin CLI (probe + state transfer + swap), an old
// backend is removed and killed — and the fleet converges: every
// member reports the same last applied update ID, and draws reflect
// every insert and tombstone, including from the backend that joined
// after the updates it never saw broadcast.
func TestLiveMembership(t *testing.T) {
	const n = 400
	newBackend := func() (string, *httptest.Server) {
		srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: n, MaxT: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts.URL, ts
	}
	b0, oldTS := newBackend()
	b1, _ := newBackend()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-probe-interval", "100ms",
			b0, b1,
		}, os.Stderr, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("router exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("router did not come up")
	}
	routerURL := "http://" + addr

	cl := srj.NewClient(routerURL)
	key := srj.EngineKey{Dataset: "uniform", L: 300, Algorithm: "bbst", Seed: 9}
	bound := cl.Bind(key)
	// The default resolver seeds R from DatasetSeed 1, so the victim's
	// ID is knowable here.
	victim := srj.MustGenerate("uniform", n, 1)[2].ID

	for i, u := range []srj.Update{
		{InsertR: []srj.Point{{ID: 4000, X: 9000, Y: 9000}},
			InsertS: []srj.Point{{ID: 4001, X: 9100, Y: 9100}}},
		{DeleteR: []int32{victim}},
	} {
		if _, err := bound.Apply(ctx, u); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}

	// A third backend joins the live ring through the admin CLI. The
	// add blocks until the router has probed it and transferred both
	// updates' worth of state, so no sleep is needed.
	b2, _ := newBackend()
	if err := run(ctx, []string{"-admin", routerURL, "add", b2}, os.Stderr, nil); err != nil {
		t.Fatalf("admin add: %v", err)
	}

	// An update after the join broadcasts to all three — the new member
	// continues the sequence its installed snapshot seated.
	if _, err := bound.Apply(ctx, srj.Update{InsertS: []srj.Point{{ID: 4002, X: 8950, Y: 9050}}}); err != nil {
		t.Fatalf("post-join update: %v", err)
	}

	// Convergence: the fleet stats report the key's store on all three
	// backends at the same last applied update ID.
	lastApplied := func(want int) map[string]uint64 {
		t.Helper()
		st, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]uint64{}
		for _, info := range st.Stores {
			if info.Key.Dataset == key.Dataset {
				got[info.Backend] = info.LastAppliedID
			}
		}
		if len(got) != want {
			t.Fatalf("store reported by %d backends, want %d: %v", len(got), want, got)
		}
		return got
	}
	for backend, id := range lastApplied(3) {
		if id != 3 {
			t.Fatalf("backend %s at update %d, want 3", backend, id)
		}
	}

	// An original backend leaves the ring, then dies for good.
	if err := run(ctx, []string{"-admin", routerURL, "remove", b0}, os.Stderr, nil); err != nil {
		t.Fatalf("admin remove: %v", err)
	}
	oldTS.Close()
	var routing struct {
		Backends []struct {
			Addr string `json:"addr"`
		} `json:"backends"`
	}
	resp, err := http.Get(routerURL + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&routing)
	resp.Body.Close()
	if err != nil || len(routing.Backends) != 2 {
		t.Fatalf("ring after remove: %+v, err %v", routing, err)
	}
	for _, b := range routing.Backends {
		if b.Addr == b0 {
			t.Fatalf("removed backend %s still on the ring", b0)
		}
	}

	// Draws converge: through the router and direct from the late
	// joiner, every insert is live and the tombstone holds. The direct
	// pair proves the transferred state serves, not just answers stats.
	checkDraw := func(who string, src srj.Source) {
		t.Helper()
		res, err := src.Draw(ctx, srj.Request{T: 5000, Seed: 42})
		if err != nil {
			t.Fatalf("%s draw: %v", who, err)
		}
		sawInsert := false
		for _, p := range res.Pairs {
			if p.R.ID == victim {
				t.Fatalf("%s served tombstoned point %d", who, victim)
			}
			if p.R.ID == 4000 {
				sawInsert = true
			}
		}
		if !sawInsert {
			t.Fatalf("%s lost the inserted cluster", who)
		}
	}
	checkDraw("router", bound)
	checkDraw("late joiner", srj.NewClient(b2).Bind(key))

	// Seeded draws from the late joiner are reproducible: the
	// transferred store is a deterministic serving replica.
	direct := srj.NewClient(b2).Bind(key)
	a, err := direct.Draw(ctx, srj.Request{T: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.Draw(ctx, srj.Request{T: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("late joiner not deterministic at sample %d", i)
		}
	}

	// And the survivors agree on the sequence.
	for backend, id := range lastApplied(2) {
		if id != 3 {
			t.Fatalf("backend %s at update %d after remove, want 3", backend, id)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not shut down")
	}
}

func TestRunNoBackends(t *testing.T) {
	if err := run(context.Background(), nil, os.Stderr, nil); err == nil {
		t.Fatal("no backends accepted")
	}
}

// TestRouterEndToEnd boots the real binary path — flag parsing, ring
// construction, listener — and serves an unmodified srj client
// through it: the router proxy is wire-compatible with srjserver, so
// the same client code works against a single server and a fleet.
func TestRouterEndToEnd(t *testing.T) {
	backends := startBackends(t, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", backends[0] + "," + backends[1],
			"-probe-interval", "100ms",
			backends[2], // positional backends merge with -backends
		}, os.Stderr, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("router exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("router did not come up")
	}

	cl := srj.NewClient("http://" + addr)
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	key := srj.EngineKey{Dataset: "uniform", L: 300, Seed: 1}
	src := cl.Bind(key)

	// A seeded draw through the router proxy is byte-identical to the
	// same draw straight from the key's shard: the proxy re-frames the
	// stream, it does not reinterpret it.
	res, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2000 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	for _, b := range backends {
		direct, err := srj.NewClient(b).Bind(key).Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Pairs {
			if res.Pairs[i] != direct.Pairs[i] {
				t.Fatalf("proxy and backend %s diverged at sample %d", b, i)
			}
		}
	}

	// The JSON transport proxies too.
	pairs, err := cl.SampleJSON(ctx, srj.SampleRequest{Dataset: "uniform", L: 300, Seed: 1, T: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("JSON: got %d pairs", len(pairs))
	}

	// Semantic refusals surface through the proxy with their sentinel
	// AND their pre-stream HTTP status intact: a refused binary draw
	// is a 400, exactly as from srjserver — never a 200 hiding an
	// error frame.
	var apiErr *srj.APIError
	if _, err := src.Draw(ctx, srj.Request{T: 10_001}); !errors.Is(err, srj.ErrSampleCap) {
		t.Fatalf("over-cap through proxy: err = %v, want ErrSampleCap", err)
	} else if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("over-cap through proxy: %v, want a pre-stream HTTP 400", err)
	}
	if _, err := cl.Bind(srj.EngineKey{Dataset: "no-such-set", L: 300}).Draw(ctx, srj.Request{T: 10}); err == nil {
		t.Fatal("unknown dataset accepted through proxy")
	}

	// The rest of the srjserver client API works against the router
	// unchanged: stats aggregate the fleet, the engine list
	// concatenates it, and eviction broadcasts across it.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.Builds < 3 || st.MaxT != 10_000 {
		t.Fatalf("aggregate stats = %+v, want >=3 fleet builds and the backends' MaxT", st)
	}
	engines, err := cl.Engines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) < 3 {
		t.Fatalf("fleet engine list has %d entries, want >= 3", len(engines))
	}
	evicted, err := cl.EvictEngine(ctx, key)
	if err != nil || !evicted {
		t.Fatalf("broadcast evict through proxy: %v, %v", evicted, err)
	}
	if evicted, err = cl.EvictEngine(ctx, key); err != nil || evicted {
		t.Fatalf("double evict through proxy: %v, %v (want false)", evicted, err)
	}

	// Routing telemetry lives on its own path, off the shared surface.
	resp, err := http.Get("http://" + addr + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	var routing struct {
		Backends []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	err = json.NewDecoder(resp.Body).Decode(&routing)
	resp.Body.Close()
	if err != nil || len(routing.Backends) != 3 {
		t.Fatalf("routing stats: %+v, err %v", routing, err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not shut down")
	}
}
