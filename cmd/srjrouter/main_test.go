package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	srj "repro"
)

// startBackends brings up n in-process srjservers over small built-in
// datasets and returns their base URLs.
func startBackends(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 2000, MaxT: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

func TestRunNoBackends(t *testing.T) {
	if err := run(context.Background(), nil, os.Stderr, nil); err == nil {
		t.Fatal("no backends accepted")
	}
}

// TestRouterEndToEnd boots the real binary path — flag parsing, ring
// construction, listener — and serves an unmodified srj client
// through it: the router proxy is wire-compatible with srjserver, so
// the same client code works against a single server and a fleet.
func TestRouterEndToEnd(t *testing.T) {
	backends := startBackends(t, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", backends[0] + "," + backends[1],
			"-probe-interval", "100ms",
			backends[2], // positional backends merge with -backends
		}, os.Stderr, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("router exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("router did not come up")
	}

	cl := srj.NewClient("http://" + addr)
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	key := srj.EngineKey{Dataset: "uniform", L: 300, Seed: 1}
	src := cl.Bind(key)

	// A seeded draw through the router proxy is byte-identical to the
	// same draw straight from the key's shard: the proxy re-frames the
	// stream, it does not reinterpret it.
	res, err := src.Draw(ctx, srj.Request{T: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2000 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	for _, b := range backends {
		direct, err := srj.NewClient(b).Bind(key).Draw(ctx, srj.Request{T: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Pairs {
			if res.Pairs[i] != direct.Pairs[i] {
				t.Fatalf("proxy and backend %s diverged at sample %d", b, i)
			}
		}
	}

	// The JSON transport proxies too.
	pairs, err := cl.SampleJSON(ctx, srj.SampleRequest{Dataset: "uniform", L: 300, Seed: 1, T: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("JSON: got %d pairs", len(pairs))
	}

	// Semantic refusals surface through the proxy with their sentinel
	// AND their pre-stream HTTP status intact: a refused binary draw
	// is a 400, exactly as from srjserver — never a 200 hiding an
	// error frame.
	var apiErr *srj.APIError
	if _, err := src.Draw(ctx, srj.Request{T: 10_001}); !errors.Is(err, srj.ErrSampleCap) {
		t.Fatalf("over-cap through proxy: err = %v, want ErrSampleCap", err)
	} else if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("over-cap through proxy: %v, want a pre-stream HTTP 400", err)
	}
	if _, err := cl.Bind(srj.EngineKey{Dataset: "no-such-set", L: 300}).Draw(ctx, srj.Request{T: 10}); err == nil {
		t.Fatal("unknown dataset accepted through proxy")
	}

	// The rest of the srjserver client API works against the router
	// unchanged: stats aggregate the fleet, the engine list
	// concatenates it, and eviction broadcasts across it.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.Builds < 3 || st.MaxT != 10_000 {
		t.Fatalf("aggregate stats = %+v, want >=3 fleet builds and the backends' MaxT", st)
	}
	engines, err := cl.Engines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) < 3 {
		t.Fatalf("fleet engine list has %d entries, want >= 3", len(engines))
	}
	evicted, err := cl.EvictEngine(ctx, key)
	if err != nil || !evicted {
		t.Fatalf("broadcast evict through proxy: %v, %v", evicted, err)
	}
	if evicted, err = cl.EvictEngine(ctx, key); err != nil || evicted {
		t.Fatalf("double evict through proxy: %v, %v (want false)", evicted, err)
	}

	// Routing telemetry lives on its own path, off the shared surface.
	resp, err := http.Get("http://" + addr + "/v1/router")
	if err != nil {
		t.Fatal(err)
	}
	var routing struct {
		Backends []struct {
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	}
	err = json.NewDecoder(resp.Body).Decode(&routing)
	resp.Body.Close()
	if err != nil || len(routing.Backends) != 3 {
		t.Fatalf("routing stats: %+v, err %v", routing, err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not shut down")
	}
}
