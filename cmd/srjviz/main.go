// Command srjviz renders an ASCII density heatmap of a spatial range
// join directly from random samples — the visualization use case from
// the paper's introduction, as a tool.
//
// Usage:
//
//	srjviz -r r.bin -s s.bin -l 100 -t 200000
//	srjviz -r pts.csv -s pts.csv -l 50 -w 100 -h 40 -side r
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	srj "repro"
	"repro/internal/aggregate"
	"repro/internal/geom"
)

// run executes srjviz with explicit arguments and output so tests can
// drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srjviz", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		rPath  = fs.String("r", "", "path to the R point file (required)")
		sPath  = fs.String("s", "", "path to the S point file (required)")
		l      = fs.Float64("l", 100, "window half-extent")
		t      = fs.Int("t", 100000, "number of join samples to render from")
		width  = fs.Int("w", 72, "heatmap width in characters")
		height = fs.Int("h", 36, "heatmap height in characters")
		side   = fs.String("side", "mid", "which coordinate to plot: r, s, or mid (pair midpoint)")
		seed   = fs.Uint64("seed", 1, "sampling seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" || *sPath == "" {
		return fmt.Errorf("-r and -s are required (see -h)")
	}
	R, err := srj.LoadPoints(*rPath)
	if err != nil {
		return fmt.Errorf("loading R: %w", err)
	}
	S, err := srj.LoadPoints(*sPath)
	if err != nil {
		return fmt.Errorf("loading S: %w", err)
	}
	all := append(append([]srj.Point(nil), R...), S...)
	domain := geom.BoundingRect(all)
	if domain.Area() == 0 {
		// Degenerate (collinear or single-point) inputs: widen.
		domain.XMax += 1
		domain.YMax += 1
	}
	hist, err := aggregate.NewHistogram(domain, *width, *height)
	if err != nil {
		return err
	}
	sampler, err := srj.NewSampler(R, S, *l, &srj.Options{Seed: *seed})
	if err != nil {
		return err
	}
	pairs, err := sampler.Sample(*t)
	if err != nil && len(pairs) == 0 {
		return err
	}
	for _, p := range pairs {
		switch *side {
		case "r":
			hist.AddPoint(p.R.X, p.R.Y)
		case "s":
			hist.AddPoint(p.S.X, p.S.Y)
		case "mid":
			hist.AddPair(p)
		default:
			return fmt.Errorf("unknown -side %q (r, s, or mid)", *side)
		}
	}
	fmt.Fprintf(stdout, "join density from %d samples (n=%d, m=%d, l=%g, |J| est=%.0f):\n",
		len(pairs), len(R), len(S), *l, srj.EstimateJoinSize(sampler))
	fmt.Fprint(stdout, hist.Render())
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "srjviz: %v\n", err)
		os.Exit(1)
	}
}
