package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	srj "repro"
)

func writeInputs(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.bin")
	sPath := filepath.Join(dir, "s.bin")
	if err := srj.SavePoints(rPath, srj.MustGenerate("nyc", 3000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := srj.SavePoints(sPath, srj.MustGenerate("nyc", 3000, 2)); err != nil {
		t.Fatal(err)
	}
	return rPath, sPath
}

func TestRendersHeatmap(t *testing.T) {
	rPath, sPath := writeInputs(t)
	for _, side := range []string{"r", "s", "mid"} {
		var out bytes.Buffer
		if err := run([]string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "2000", "-w", "40", "-h", "10", "-side", side}, &out); err != nil {
			t.Fatalf("side %s: %v", side, err)
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		// Header + 10 rows.
		if len(lines) != 11 {
			t.Fatalf("side %s: got %d lines", side, len(lines))
		}
		if !strings.Contains(lines[0], "|J| est=") {
			t.Fatalf("header missing estimate: %q", lines[0])
		}
		for _, row := range lines[1:] {
			if len([]rune(row)) != 40 {
				t.Fatalf("row width %d, want 40", len([]rune(row)))
			}
		}
	}
}

func TestErrors(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"-r", rPath},
		{"-r", "/missing", "-s", sPath},
		{"-r", rPath, "-s", sPath, "-side", "bogus"},
		{"-r", rPath, "-s", sPath, "-w", "0"},
		{"-r", rPath, "-s", sPath, "-l", "-1"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestDegenerateDomain(t *testing.T) {
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.bin")
	sPath := filepath.Join(dir, "s.bin")
	// All points identical: bounding box has zero area.
	pts := []srj.Point{{X: 5, Y: 5, ID: 0}, {X: 5, Y: 5, ID: 1}}
	if err := srj.SavePoints(rPath, pts); err != nil {
		t.Fatal(err)
	}
	if err := srj.SavePoints(sPath, pts); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-r", rPath, "-s", sPath, "-l", "1", "-t", "10", "-w", "8", "-h", "4"}, &out); err != nil {
		t.Fatal(err)
	}
}
