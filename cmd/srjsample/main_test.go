package main

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	srj "repro"
)

// writeInputs generates two point files and returns their paths.
func writeInputs(t *testing.T) (rPath, sPath string) {
	t.Helper()
	dir := t.TempDir()
	rPath = filepath.Join(dir, "r.bin")
	sPath = filepath.Join(dir, "s.bin")
	if err := srj.SavePoints(rPath, srj.MustGenerate("foursquare", 2000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := srj.SavePoints(sPath, srj.MustGenerate("foursquare", 2000, 2)); err != nil {
		t.Fatal(err)
	}
	return rPath, sPath
}

// parseCSV checks output shape and returns the number of lines.
func parseCSV(t *testing.T, out string) int {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return 0
	}
	for _, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			t.Fatalf("bad CSV line %q", line)
		}
		for _, f := range fields {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("non-numeric field %q in %q", f, line)
			}
		}
	}
	return len(lines)
}

func TestSampleAllAlgorithms(t *testing.T) {
	rPath, sPath := writeInputs(t)
	for _, algo := range srj.Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "100", "-algo", string(algo)}, &out, &errBuf)
			if err != nil {
				t.Fatal(err)
			}
			if n := parseCSV(t, out.String()); n != 100 {
				t.Fatalf("got %d lines", n)
			}
		})
	}
}

func TestSampleStatsFlag(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "50", "-stats"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm", "iterations", "sampling", "Σµ"} {
		if !strings.Contains(errBuf.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, errBuf.String())
		}
	}
}

func TestSampleParallelWorkers(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "200", "-workers", "4"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if n := parseCSV(t, out.String()); n != 200 {
		t.Fatalf("got %d lines", n)
	}
}

func TestSampleFractionalCascading(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var plain, fc, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "100", "-seed", "9"}, &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "100", "-seed", "9", "-fc"}, &fc, &errBuf); err != nil {
		t.Fatal(err)
	}
	if plain.String() != fc.String() {
		t.Fatal("FC must not change the sample stream for equal seeds")
	}
}

func TestSampleErrors(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out, errBuf bytes.Buffer
	cases := [][]string{
		{},                                       // missing paths
		{"-r", rPath},                            // missing -s
		{"-r", "/missing.bin", "-s", sPath},      // bad R path
		{"-r", rPath, "-s", "/missing.bin"},      // bad S path
		{"-r", rPath, "-s", sPath, "-l", "0"},    // invalid extent
		{"-r", rPath, "-s", sPath, "-algo", "x"}, // unknown algorithm
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out, &errBuf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestSampleWithoutReplacementFlag(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "100", "-without-replacement"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	seen := map[string]bool{}
	for _, l := range lines {
		f := strings.Split(l, ",")
		key := f[0] + "|" + f[3]
		if seen[key] {
			t.Fatalf("duplicate pair %s with -without-replacement", key)
		}
		seen[key] = true
	}
}

// TestSampleCanceled: a canceled context (the Ctrl-C path) stops the
// draw between batches with ctx.Err, leaving only whole CSV lines.
func TestSampleCanceled(t *testing.T) {
	rPath, sPath := writeInputs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errBuf bytes.Buffer
	err := run(ctx, []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "100000"}, &out, &errBuf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := out.String(); s != "" && !strings.HasSuffix(s, "\n") {
		t.Fatal("cancellation left a partial CSV line")
	}
	// The parallel path honors cancellation too.
	err = run(ctx, []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "1000", "-workers", "4"}, &out, &errBuf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workers: err = %v, want context.Canceled", err)
	}
}

// TestSampleNegativeT: a negative -t is refused up front, not
// silently treated as an empty draw.
func TestSampleNegativeT(t *testing.T) {
	rPath, sPath := writeInputs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-r", rPath, "-s", sPath, "-l", "200", "-t", "-5"}, &out, &errBuf); err == nil {
		t.Fatal("negative -t accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("negative -t wrote output: %q", out.String())
	}
}
