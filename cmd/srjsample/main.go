// Command srjsample draws uniform random samples from the spatial
// range join of two point files without computing the join.
//
// Usage:
//
//	srjsample -r r.bin -s s.bin -l 100 -t 1000000 > samples.csv
//	srjsample -r pts.csv -s pts.csv -l 50 -t 1000 -algo kds -stats
//	srjsample -r r.bin -s s.bin -l 100 -t 1000000 -workers 8
//
// Output is CSV: rID,rX,rY,sID,sX,sY — one line per sample.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	srj "repro"
)

func algoNames() string {
	names := make([]string, 0, len(srj.Algorithms()))
	for _, a := range srj.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

// csvBatch is the draw granularity of the single-worker path: output
// is flushed per batch and the context is checked between batches, so
// Ctrl-C stops the run at a line boundary, never mid-write.
const csvBatch = 8192

// run executes srjsample with explicit arguments and streams so tests
// can drive it directly. Cancelling ctx (main wires it to SIGINT and
// SIGTERM) stops sampling between batches and flushes the lines
// already written.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("srjsample", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rPath   = fs.String("r", "", "path to the R point file (required)")
		sPath   = fs.String("s", "", "path to the S point file (required)")
		l       = fs.Float64("l", 100, "window half-extent: w(r) = [r±l]×[r±l]")
		t       = fs.Int("t", 1000, "number of samples to draw")
		algo    = fs.String("algo", "bbst", "algorithm ("+algoNames()+")")
		seed    = fs.Uint64("seed", 1, "sampling seed")
		noRepl  = fs.Bool("without-replacement", false, "suppress duplicate pairs")
		fc      = fs.Bool("fc", false, "enable fractional cascading (BBST only)")
		workers = fs.Int("workers", 1, "parallel sampling workers (with replacement only)")
		stats   = fs.Bool("stats", false, "print phase timings and counters to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" || *sPath == "" {
		return fmt.Errorf("-r and -s are required (see -h)")
	}
	// The batched draw loop below would silently treat a negative -t
	// as "draw nothing"; refuse it up front the way the samplers do.
	if *t < 0 {
		return fmt.Errorf("-t must be >= 0, got %d", *t)
	}
	R, err := srj.LoadPoints(*rPath)
	if err != nil {
		return fmt.Errorf("loading R: %w", err)
	}
	S, err := srj.LoadPoints(*sPath)
	if err != nil {
		return fmt.Errorf("loading S: %w", err)
	}
	if _, err := srj.ValidatePoints(R); err != nil {
		return fmt.Errorf("invalid R: %w", err)
	}
	if _, err := srj.ValidatePoints(S); err != nil {
		return fmt.Errorf("invalid S: %w", err)
	}
	opts := &srj.Options{
		Algorithm:           srj.Algorithm(*algo),
		Seed:                *seed,
		WithoutReplacement:  *noRepl,
		FractionalCascading: *fc,
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := bufio.NewWriter(stdout)
	writeBatch := func(pairs []srj.Pair) error {
		for _, p := range pairs {
			fmt.Fprintf(w, "%d,%g,%g,%d,%g,%g\n", p.R.ID, p.R.X, p.R.Y, p.S.ID, p.S.X, p.S.Y)
		}
		return w.Flush()
	}
	var sampler srj.Sampler
	if *workers > 1 {
		// The parallel path materializes all samples before writing;
		// cancellation takes effect at the write-batch boundaries.
		pairs, err := srj.SampleParallel(R, S, *l, *t, *workers, opts)
		if err != nil {
			return err
		}
		for off := 0; off < len(pairs); off += csvBatch {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := off + csvBatch
			if end > len(pairs) {
				end = len(pairs)
			}
			if err := writeBatch(pairs[off:end]); err != nil {
				return err
			}
		}
	} else {
		sampler, err = srj.NewSampler(R, S, *l, opts)
		if err != nil {
			return err
		}
		// Draw and emit in batches: constant memory however large -t
		// is, and a context check between batches.
		buf := make([]srj.Pair, csvBatch)
		drawn := 0
		for drawn < *t {
			if err := ctx.Err(); err != nil {
				return err
			}
			batch := buf
			if rem := *t - drawn; rem < len(batch) {
				batch = batch[:rem]
			}
			n, serr := srj.SampleInto(sampler, batch)
			drawn += n
			if err := writeBatch(batch[:n]); err != nil {
				return err
			}
			if serr != nil {
				// Without replacement, exhausting J surfaces as a
				// rejection-budget error once some samples were drawn;
				// emit what exists, as Sample(t) would.
				if drawn > 0 {
					break
				}
				return serr
			}
		}
	}
	if *stats && sampler != nil {
		st := sampler.Stats()
		fmt.Fprintf(stderr, "algorithm      %s\n", sampler.Name())
		fmt.Fprintf(stderr, "n, m           %d, %d\n", len(R), len(S))
		fmt.Fprintf(stderr, "samples        %d (of %d requested)\n", st.Samples, *t)
		fmt.Fprintf(stderr, "iterations     %d\n", st.Iterations)
		fmt.Fprintf(stderr, "preprocess     %v\n", st.PreprocessTime)
		fmt.Fprintf(stderr, "grid mapping   %v\n", st.GridMapTime)
		fmt.Fprintf(stderr, "upper bounding %v\n", st.UpperBoundTime)
		fmt.Fprintf(stderr, "sampling       %v\n", st.SampleTime)
		fmt.Fprintf(stderr, "total          %v\n", st.Total())
		fmt.Fprintf(stderr, "Σµ             %.0f\n", st.MuSum)
	}
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "srjsample: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "srjsample: %v\n", err)
		os.Exit(1)
	}
}
