// Command srjsample draws uniform random samples from the spatial
// range join of two point files without computing the join.
//
// Usage:
//
//	srjsample -r r.bin -s s.bin -l 100 -t 1000000 > samples.csv
//	srjsample -r pts.csv -s pts.csv -l 50 -t 1000 -algo kds -stats
//	srjsample -r r.bin -s s.bin -l 100 -t 1000000 -workers 8
//
// Output is CSV: rID,rX,rY,sID,sX,sY — one line per sample.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	srj "repro"
)

func algoNames() string {
	names := make([]string, 0, len(srj.Algorithms()))
	for _, a := range srj.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

// run executes srjsample with explicit arguments and streams so tests
// can drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("srjsample", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rPath   = fs.String("r", "", "path to the R point file (required)")
		sPath   = fs.String("s", "", "path to the S point file (required)")
		l       = fs.Float64("l", 100, "window half-extent: w(r) = [r±l]×[r±l]")
		t       = fs.Int("t", 1000, "number of samples to draw")
		algo    = fs.String("algo", "bbst", "algorithm ("+algoNames()+")")
		seed    = fs.Uint64("seed", 1, "sampling seed")
		noRepl  = fs.Bool("without-replacement", false, "suppress duplicate pairs")
		fc      = fs.Bool("fc", false, "enable fractional cascading (BBST only)")
		workers = fs.Int("workers", 1, "parallel sampling workers (with replacement only)")
		stats   = fs.Bool("stats", false, "print phase timings and counters to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rPath == "" || *sPath == "" {
		return fmt.Errorf("-r and -s are required (see -h)")
	}
	R, err := srj.LoadPoints(*rPath)
	if err != nil {
		return fmt.Errorf("loading R: %w", err)
	}
	S, err := srj.LoadPoints(*sPath)
	if err != nil {
		return fmt.Errorf("loading S: %w", err)
	}
	if _, err := srj.ValidatePoints(R); err != nil {
		return fmt.Errorf("invalid R: %w", err)
	}
	if _, err := srj.ValidatePoints(S); err != nil {
		return fmt.Errorf("invalid S: %w", err)
	}
	opts := &srj.Options{
		Algorithm:           srj.Algorithm(*algo),
		Seed:                *seed,
		WithoutReplacement:  *noRepl,
		FractionalCascading: *fc,
	}
	var pairs []srj.Pair
	var sampler srj.Sampler
	if *workers > 1 {
		pairs, err = srj.SampleParallel(R, S, *l, *t, *workers, opts)
		if err != nil {
			return err
		}
	} else {
		sampler, err = srj.NewSampler(R, S, *l, opts)
		if err != nil {
			return err
		}
		pairs, err = sampler.Sample(*t)
		if err != nil && len(pairs) == 0 {
			return err
		}
	}
	w := bufio.NewWriter(stdout)
	for _, p := range pairs {
		fmt.Fprintf(w, "%d,%g,%g,%d,%g,%g\n", p.R.ID, p.R.X, p.R.Y, p.S.ID, p.S.X, p.S.Y)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *stats && sampler != nil {
		st := sampler.Stats()
		fmt.Fprintf(stderr, "algorithm      %s\n", sampler.Name())
		fmt.Fprintf(stderr, "n, m           %d, %d\n", len(R), len(S))
		fmt.Fprintf(stderr, "samples        %d (of %d requested)\n", st.Samples, *t)
		fmt.Fprintf(stderr, "iterations     %d\n", st.Iterations)
		fmt.Fprintf(stderr, "preprocess     %v\n", st.PreprocessTime)
		fmt.Fprintf(stderr, "grid mapping   %v\n", st.GridMapTime)
		fmt.Fprintf(stderr, "upper bounding %v\n", st.UpperBoundTime)
		fmt.Fprintf(stderr, "sampling       %v\n", st.SampleTime)
		fmt.Fprintf(stderr, "total          %v\n", st.Total())
		fmt.Fprintf(stderr, "Σµ             %.0f\n", st.MuSum)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "srjsample: %v\n", err)
		os.Exit(1)
	}
}
