package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	srj "repro"
)

func TestParseWarm(t *testing.T) {
	keys, err := parseWarm("nyc:100; castreet:50:kds:7 ;uniform:25.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []srj.EngineKey{
		{Dataset: "nyc", L: 100, Algorithm: "bbst"},
		{Dataset: "castreet", L: 50, Algorithm: "kds", Seed: 7},
		{Dataset: "uniform", L: 25.5, Algorithm: "bbst"},
	}
	if len(keys) != len(want) {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %+v, want %+v", i, keys[i], want[i])
		}
	}
	for _, bad := range []string{"nyc", "nyc:abc", "nyc:100:bbst:xyz", "a:1:b:2:c"} {
		if _, err := parseWarm(bad); err == nil {
			t.Errorf("parseWarm(%q) accepted", bad)
		}
	}
	if keys, err := parseWarm(""); err != nil || len(keys) != 0 {
		t.Errorf("empty spec: %v, %v", keys, err)
	}
}

func TestBuildServerBadFlags(t *testing.T) {
	for _, load := range []string{"noequals", "=path", "name=", "x=/does/not/exist"} {
		if _, err := buildServer(&config{n: 100, dseed: 1, load: load, maxT: 100}, nil); err == nil {
			t.Errorf("-load %q accepted", load)
		}
	}
	if _, err := parseFlags([]string{"-budget-mb", "-1"}, os.Stderr); err == nil {
		t.Error("negative -budget-mb accepted")
	}
	if _, err := parseFlags([]string{"-maxt", "0"}, os.Stderr); err == nil {
		t.Error("zero -maxt accepted")
	}
}

// TestServerEndToEnd boots the real binary path — flag parsing,
// dataset loading, warmup, listener — and serves a client.
func TestServerEndToEnd(t *testing.T) {
	// A file-backed dataset exercises the -load path.
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.bin")
	if err := srj.SavePoints(path, srj.MustGenerate("uniform", 2000, 5)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-n", "1000",
			"-load", "mine=" + path,
			"-warm", "uniform:200",
			"-maxt", "10000",
		}, os.Stderr, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not come up")
	}

	cl := srj.NewClient("http://" + addr)
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	// The warmed engine serves without a build (builds stays 1).
	if _, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "uniform", L: 200, T: 500}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.Builds != 1 || st.Registry.Hits != 1 {
		t.Fatalf("warmed key rebuilt: %+v", st.Registry)
	}
	// The file-backed dataset serves too.
	pairs, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "mine", L: 500, T: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// Over-cap requests are refused.
	if _, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "mine", L: 500, T: 10001}); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap err = %v", err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
