package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	srj "repro"
)

func TestParseWarm(t *testing.T) {
	keys, err := parseWarm("nyc:100; castreet:50:kds:7 ;uniform:25.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []srj.EngineKey{
		{Dataset: "nyc", L: 100, Algorithm: "bbst"},
		{Dataset: "castreet", L: 50, Algorithm: "kds", Seed: 7},
		{Dataset: "uniform", L: 25.5, Algorithm: "bbst"},
	}
	if len(keys) != len(want) {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %+v, want %+v", i, keys[i], want[i])
		}
	}
	for _, bad := range []string{"nyc", "nyc:abc", "nyc:100:bbst:xyz", "a:1:b:2:c"} {
		if _, err := parseWarm(bad); err == nil {
			t.Errorf("parseWarm(%q) accepted", bad)
		}
	}
	if keys, err := parseWarm(""); err != nil || len(keys) != 0 {
		t.Errorf("empty spec: %v, %v", keys, err)
	}
}

func TestBuildServerBadFlags(t *testing.T) {
	for _, load := range []string{"noequals", "=path", "name=", "x=/does/not/exist"} {
		if _, err := buildServer(&config{n: 100, dseed: 1, load: load, maxT: 100}, nil); err == nil {
			t.Errorf("-load %q accepted", load)
		}
	}
	if _, err := parseFlags([]string{"-budget-mb", "-1"}, os.Stderr); err == nil {
		t.Error("negative -budget-mb accepted")
	}
	if _, err := parseFlags([]string{"-maxt", "0"}, os.Stderr); err == nil {
		t.Error("zero -maxt accepted")
	}
}

// TestServerEndToEnd boots the real binary path — flag parsing,
// dataset loading, warmup, listener — and serves a client.
func TestServerEndToEnd(t *testing.T) {
	// A file-backed dataset exercises the -load path.
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.bin")
	if err := srj.SavePoints(path, srj.MustGenerate("uniform", 2000, 5)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-n", "1000",
			"-load", "mine=" + path,
			"-warm", "uniform:200",
			"-maxt", "10000",
		}, os.Stderr, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not come up")
	}

	cl := srj.NewClient("http://" + addr)
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	// The warmed engine serves without a build (builds stays 1).
	if _, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "uniform", L: 200, T: 500}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.Builds != 1 || st.Registry.Hits != 1 {
		t.Fatalf("warmed key rebuilt: %+v", st.Registry)
	}
	// The file-backed dataset serves too.
	pairs, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "mine", L: 500, T: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	// Over-cap requests are refused.
	if _, err := cl.Sample(ctx, srj.SampleRequest{Dataset: "mine", L: 500, T: 10001}); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap err = %v", err)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// startShard boots one srjserver through the real run() path and
// returns its listen address, a kill function (cancels the context
// and waits for a clean exit), and the exit channel.
func startShard(t *testing.T, args []string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, args, os.Stderr, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		cancel()
		t.Fatalf("shard exited early: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("shard did not come up")
	}
	killed := false
	kill := func() {
		if killed {
			return
		}
		killed = true
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shard exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("shard did not shut down")
		}
	}
	t.Cleanup(kill)
	return addr, kill
}

// TestKillAndRestartRecovery is the durability acceptance test: a
// two-shard fleet behind a router takes inserts and deletes, one
// shard is killed and restarted against its -data-dir, and the fleet
// must come back indistinguishable — seeded draws against both shards
// byte-identical, no tombstoned pair served, last applied update ID
// agreeing across the fleet.
func TestKillAndRestartRecovery(t *testing.T) {
	const n, dseed = 400, 5
	dirs := []string{t.TempDir(), t.TempDir()}
	shardArgs := func(addr, dir string) []string {
		return []string{
			"-addr", addr,
			"-n", "400",
			"-dseed", "5",
			"-maxt", "50000",
			"-data-dir", dir,
		}
	}
	addr0, _ := startShard(t, shardArgs("127.0.0.1:0", dirs[0]))
	addr1, kill1 := startShard(t, shardArgs("127.0.0.1:0", dirs[1]))

	rt, err := srj.NewRouter([]string{"http://" + addr0, "http://" + addr1}, srj.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	key := srj.EngineKey{Dataset: "uniform", L: 300, Algorithm: "bbst", Seed: 9}
	ctx := context.Background()

	// The builtin resolver regenerates the same points on every boot,
	// so the victim's ID is knowable here.
	victim := srj.MustGenerate("uniform", n, dseed)[2].ID

	// Three updates through the router (broadcast to both shards),
	// kept far below the rebuild threshold so cross-shard generations
	// — and with them seeded draws — stay comparable after recovery.
	bound := rt.Bind(key)
	for i, u := range []srj.Update{
		{InsertR: []srj.Point{{ID: 4000, X: 9000, Y: 9000}},
			InsertS: []srj.Point{{ID: 4001, X: 9100, Y: 9100}}},
		{DeleteR: []int32{victim}},
		{InsertS: []srj.Point{{ID: 4002, X: 8950, Y: 9050}}},
	} {
		if _, err := bound.Apply(ctx, u); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}

	// Kill shard 1 and restart it on the same address against the same
	// data dir. The resolver hands it the seed data; the store must
	// come back from snapshot+log, not from scratch.
	kill1()
	if addr1b, _ := startShard(t, shardArgs(addr1, dirs[1])); addr1b != addr1 {
		t.Fatalf("restarted shard bound %s, want %s", addr1b, addr1)
	}

	// Seeded draws direct to each shard must be byte-identical: same
	// base data, same replayed updates, same generation, same seed.
	clients := []*srj.Client{srj.NewClient("http://" + addr0), srj.NewClient("http://" + addr1)}
	var draws [][]srj.Pair
	for i, cl := range clients {
		res, err := cl.Bind(key).Draw(ctx, srj.Request{T: 5000, Seed: 42})
		if err != nil {
			t.Fatalf("shard %d draw: %v", i, err)
		}
		sawInsert := false
		for _, p := range res.Pairs {
			if p.R.ID == victim {
				t.Fatalf("shard %d served tombstoned point %d after restart", i, victim)
			}
			if p.R.ID == 4000 {
				sawInsert = true
			}
		}
		if !sawInsert {
			t.Fatalf("shard %d lost the inserted cluster", i)
		}
		draws = append(draws, res.Pairs)
	}
	if len(draws[0]) != len(draws[1]) {
		t.Fatalf("draw sizes differ: %d vs %d", len(draws[0]), len(draws[1]))
	}
	for i := range draws[0] {
		if draws[0][i] != draws[1][i] {
			t.Fatalf("pair %d differs across shards: %v vs %v", i, draws[0][i], draws[1][i])
		}
	}

	// The fleet agrees on the last applied update ID.
	for i, cl := range clients {
		stats, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, info := range stats.Stores {
			if info.Key.Dataset != key.Dataset {
				continue
			}
			found = true
			if info.LastAppliedID != 3 {
				t.Fatalf("shard %d last applied %d, want 3", i, info.LastAppliedID)
			}
		}
		if !found {
			t.Fatalf("shard %d reports no store for %s", i, key.Dataset)
		}
	}
}
