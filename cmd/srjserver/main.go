// Command srjserver serves join samples over HTTP: one process pays
// each (dataset, l, algorithm, seed) preprocessing pass once and any
// number of clients draw Õ(1) expected-time samples from the cached
// engines (LRU-evicted under a memory budget).
//
// Datasets are the built-in generators by default; -load mounts point
// files (written by srjgen or srj.SavePoints), each split 50/50 into
// R and S the way the paper derives its join inputs.
//
// Usage:
//
//	srjserver                                  # built-ins, 100k points/side, :8080
//	srjserver -addr :9000 -n 1000000           # bigger datasets
//	srjserver -load taxi=/data/taxi.bin        # file-backed dataset "taxi"
//	srjserver -warm "nyc:100;castreet:50:bbst:7"  # prebuild engines
//	srjserver -budget-mb 4096 -maxt 5000000    # cache and request limits
//
// Datasets are mutable over the wire: POST /v1/update applies
// insert/delete batches to a key's dynamic store (created on first
// update from the same resolver), bumps the dataset generation, and
// evicts the engines the bump made stale; sampling always follows the
// current generation, so deleted points are never served.
//
// API (see internal/server): POST /v1/sample, POST /v1/update,
// GET /v1/stats, GET /v1/engines, GET /healthz, GET /metrics
// (Prometheus text exposition; -pprof additionally mounts
// /debug/pprof). -slow-draw logs outlier draws at Warn with the
// request ID, key, generation, and acceptance rate; -log-level tunes
// the structured log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	srj "repro"
	"repro/internal/server"
)

// config is the parsed flag set.
type config struct {
	addr     string
	n        int
	dseed    uint64
	budgetMB int64
	maxT     int
	timeout  time.Duration
	load     string
	warm     string
	slowDraw time.Duration
	pprof    bool
	logLevel string
	dataDir  string
	fsync    string
}

// parseFlags reads the command line into a config.
func parseFlags(args []string, stdout io.Writer) (*config, error) {
	fs := flag.NewFlagSet("srjserver", flag.ContinueOnError)
	fs.SetOutput(stdout)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.n, "n", 100_000, "points per side for generated datasets")
	fs.Uint64Var(&cfg.dseed, "dseed", 1, "seed for dataset generation and splitting")
	fs.Int64Var(&cfg.budgetMB, "budget-mb", 1024, "engine cache memory budget in MiB (0 = unlimited)")
	fs.IntVar(&cfg.maxT, "maxt", 1_000_000, "max samples per request")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline, engine build included")
	fs.StringVar(&cfg.load, "load", "", "comma-separated name=path point files served as datasets (split 50/50 into R and S)")
	fs.StringVar(&cfg.warm, "warm", "", "semicolon-separated dataset:l[:algorithm[:seed]] engines to prebuild")
	fs.DurationVar(&cfg.slowDraw, "slow-draw", 0, "log draws slower than this at Warn with full attribution (0 = off)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&cfg.logLevel, "log-level", "warn", "structured log level: debug, info, warn, error, or off")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "directory for write-ahead logs and snapshots; updates recover across restarts (empty = in-memory only)")
	fs.StringVar(&cfg.fsync, "fsync", "always", "when log appends reach disk: always, interval, or off (needs -data-dir)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if _, err := parseLogLevel(cfg.logLevel); err != nil {
		return nil, err
	}
	if cfg.budgetMB < 0 {
		// A negative budget would silently mean "unlimited" further
		// down; an operator who typed -budget-mb -1024 meant a cap.
		return nil, fmt.Errorf("-budget-mb must be >= 0 (0 = unlimited), got %d", cfg.budgetMB)
	}
	if cfg.maxT <= 0 {
		return nil, fmt.Errorf("-maxt must be positive, got %d", cfg.maxT)
	}
	return cfg, nil
}

// parseLogLevel maps the -log-level flag onto a slog level; "off"
// returns ok=false with no error, disabling the logger entirely.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off":
		return slog.LevelError + 4, nil
	}
	return 0, fmt.Errorf("-log-level must be debug, info, warn, error, or off; got %q", s)
}

// buildLogger returns the process logger writing JSON lines to w at
// the configured level, or nil for "off".
func buildLogger(levelFlag string, w io.Writer) *slog.Logger {
	level, err := parseLogLevel(levelFlag)
	if err != nil || levelFlag == "off" {
		return nil
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// buildServer assembles the srj.Server a config describes.
func buildServer(cfg *config, logger *slog.Logger) (*srj.Server, error) {
	loaded := map[string][2][]srj.Point{}
	if cfg.load != "" {
		for _, spec := range strings.Split(cfg.load, ",") {
			name, path, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" || path == "" {
				return nil, fmt.Errorf("bad -load entry %q (want name=path)", spec)
			}
			pts, err := srj.LoadPoints(path)
			if err != nil {
				return nil, fmt.Errorf("loading dataset %q: %w", name, err)
			}
			R, S := srj.SplitRS(pts, 0.5, cfg.dseed)
			loaded[name] = [2][]srj.Point{R, S}
		}
	}
	budget := cfg.budgetMB << 20
	if cfg.budgetMB == 0 {
		budget = -1 // ServerOptions convention: negative = unlimited
	}
	opts := &srj.ServerOptions{
		DatasetSize:  cfg.n,
		DatasetSeed:  cfg.dseed,
		MemoryBudget: budget,
		MaxT:         cfg.maxT,
		Timeout:      cfg.timeout,
		Logger:       logger,
		SlowDraw:     cfg.slowDraw,
		EnablePprof:  cfg.pprof,
		DataDir:      cfg.dataDir,
		FsyncPolicy:  cfg.fsync,
	}
	if len(loaded) > 0 {
		builtin := srj.BuiltinDatasets(cfg.n, cfg.dseed)
		opts.Datasets = func(name string) ([]srj.Point, []srj.Point, error) {
			if rs, ok := loaded[name]; ok {
				return rs[0], rs[1], nil
			}
			return builtin(name)
		}
	}
	return srj.NewServer(opts)
}

// parseWarm expands a -warm spec into engine keys.
func parseWarm(spec string) ([]srj.EngineKey, error) {
	var keys []srj.EngineKey
	if spec == "" {
		return keys, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("bad -warm entry %q (want dataset:l[:algorithm[:seed]])", entry)
		}
		// An omitted algorithm takes the fleet-wide default through
		// NormalizeAlgorithm — the same normalization every serving
		// tier applies, so -warm can never address a different key
		// than the requests it warms for.
		algo := ""
		if len(parts) > 2 {
			algo = parts[2]
		}
		key := srj.EngineKey{Dataset: parts[0], Algorithm: server.NormalizeAlgorithm(algo)}
		var err error
		if key.L, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return nil, fmt.Errorf("bad -warm extent in %q: %w", entry, err)
		}
		// ParseFloat accepts "NaN" and "Inf"; the extent must be a
		// real window size.
		if !(key.L > 0) || math.IsInf(key.L, 0) {
			return nil, fmt.Errorf("bad -warm extent in %q: must be positive and finite", entry)
		}
		if len(parts) > 3 {
			if key.Seed, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
				return nil, fmt.Errorf("bad -warm seed in %q: %w", entry, err)
			}
		}
		keys = append(keys, key)
	}
	return keys, nil
}

// run is the testable entry point: it parses args, brings the stack
// up, reports the bound address through ready (tests pass ":0"), and
// serves until ctx is cancelled.
func run(ctx context.Context, args []string, stdout io.Writer, ready func(addr string)) error {
	cfg, err := parseFlags(args, stdout)
	if err != nil {
		return err
	}
	srv, err := buildServer(cfg, buildLogger(cfg.logLevel, stdout))
	if err != nil {
		return err
	}
	// Shutdown order matters: the HTTP server drains first (below),
	// then the deferred Close syncs and closes the write-ahead logs.
	defer srv.Close()
	warmKeys, err := parseWarm(cfg.warm)
	if err != nil {
		return err
	}
	for _, key := range warmKeys {
		start := time.Now()
		if err := srv.Warm(ctx, key); err != nil {
			return fmt.Errorf("warming %s: %w", key, err)
		}
		fmt.Fprintf(stdout, "warmed %s in %v\n", key, time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "srjserver listening on %s (budget %d MiB, max t %d)\n",
		ln.Addr(), cfg.budgetMB, cfg.maxT)
	if ready != nil {
		ready(ln.Addr().String())
	}

	// No blanket WriteTimeout: the sample handler sets per-frame write
	// deadlines itself, so streams that make progress live while
	// stalled readers are cut off.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "srjserver: %v\n", err)
		os.Exit(1)
	}
}
