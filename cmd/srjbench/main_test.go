package main

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	srj "repro"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range paperOrder {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-base", "1500", "-t", "300", "-exp", "table2,figure9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Error("output missing Table II")
	}
	if !strings.Contains(out.String(), "Figure 9") {
		t.Error("output missing Figure 9")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "tableX"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestServeMode(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-serve", "-base", "2000", "-clients", "4",
		"-requests", "5", "-reqt", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine built once",
		"4 clients x 5 requests x 200 samples/request",
		"samples/sec",
		"rebuild-per-request baseline",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serve output missing %q:\n%s", want, out.String())
		}
	}
}

// TestServeModeRemote: the -remote flag benchmarks a running
// srjserver — here an in-process srj.NewServer on an httptest
// listener — and must show the cached-engine path beating the
// rebuild-per-request baseline.
// TestServeModeMixedLocal: -update-rate serves through a mutable
// Store, interleaving update batches with draws.
func TestServeModeMixedLocal(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-serve", "-base", "2000", "-clients", "4",
		"-requests", "6", "-reqt", "200", "-update-rate", "0.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve (mutable)",
		"update rate 0.50",
		"mixed workload finished",
		"update batches",
		"store: generation",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("mixed serve output missing %q:\n%s", want, out.String())
		}
	}
}

// TestServeModeMixedRemote: the same mixed workload over the wire —
// update batches post /v1/update and bump the server-side generation.
func TestServeModeMixedRemote(t *testing.T) {
	srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 2000, MaxT: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var out bytes.Buffer
	err = run(context.Background(), []string{"-serve", "-remote", ts.URL, "-dataset", "uniform",
		"-l", "200", "-clients", "3", "-requests", "6", "-reqt", "100", "-update-rate", "0.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mixed workload finished",
		"update batches",
		"server registry:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("mixed remote output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "rebuild-per-request baseline") {
		t.Error("mixed mode ran the rebuild baseline")
	}
}

func TestServeModeRemote(t *testing.T) {
	srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 2000, MaxT: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{"-serve", "-remote", ts.URL, "-dataset", "uniform",
		"-l", "200", "-clients", "4", "-requests", "5", "-reqt", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine warmed through the registry",
		"4 clients x 5 requests x 200 samples/request",
		"cached-engine throughput",
		"rebuild-per-request baseline",
		"evicted 8 baseline engines",
		"server registry:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("remote serve output missing %q:\n%s", want, out.String())
		}
	}
	// Every baseline request used a fresh seed, so the server must
	// have built one engine for the warm key plus one per baseline
	// request — and then evicted every baseline engine, leaving only
	// the warm key resident.
	st := srv.RegistryStats()
	if st.Builds != 1+4*2 {
		t.Errorf("server builds = %d, want 9\n%s", st.Builds, out.String())
	}
	if st.Hits < 4*5 {
		t.Errorf("server hits = %d, want >= 20", st.Hits)
	}
	if st.Entries != 1 || st.ManualEvictions != 8 || st.Evictions != 0 {
		t.Errorf("baseline engines not cleaned up: %+v", st)
	}
}

// TestServeModeRemoteSharded: several comma-separated -remote
// addresses run the same measurement through a consistent-hash
// Router. The warm key must live on exactly one shard, the baseline's
// distinct keys must spread across the fleet, and the broadcast
// eviction must leave no baseline engine resident anywhere.
func TestServeModeRemoteSharded(t *testing.T) {
	const n = 3
	servers := make([]*srj.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := srj.NewServer(&srj.ServerOptions{DatasetSize: 2000, MaxT: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		servers[i] = srv
		addrs[i] = ts.URL
	}

	var out bytes.Buffer
	err := run(context.Background(), []string{"-serve", "-remote", strings.Join(addrs, ","),
		"-dataset", "uniform", "-l", "200", "-clients", "4", "-requests", "5", "-reqt", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine warmed through the registry",
		"cached-engine throughput",
		"rebuild-per-request baseline",
		"evicted 8 baseline engines",
		"router:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sharded serve output missing %q:\n%s", want, out.String())
		}
	}
	var builds, entries uint64
	warmHomes := 0
	for i, srv := range servers {
		st := srv.RegistryStats()
		builds += st.Builds
		entries += uint64(st.Entries)
		if st.Entries > 0 {
			warmHomes++
		}
		if !strings.Contains(out.String(), addrs[i]+" registry:") {
			t.Errorf("output missing registry line for %s:\n%s", addrs[i], out.String())
		}
	}
	// One build for the warm key plus one per baseline request,
	// fleet-wide; after the broadcast eviction only the warm key's
	// engine remains, on exactly one shard.
	if builds != 1+4*2 {
		t.Errorf("fleet builds = %d, want 9", builds)
	}
	if entries != 1 || warmHomes != 1 {
		t.Errorf("fleet entries = %d on %d shards, want the warm key on exactly 1", entries, warmHomes)
	}
}

// TestServeModeRemoteRejectsBase: -base means nothing remotely (the
// dataset size is the server's -n), so combining them is an error
// rather than a silently wrong benchmark.
func TestServeModeRemoteRejectsBase(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-serve", "-remote", "http://127.0.0.1:1", "-base", "50000"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-base has no effect") {
		t.Fatalf("err = %v", err)
	}
}

func TestServeModeRemoteUnreachable(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-serve", "-remote", "http://127.0.0.1:1", "-requests", "1"}, &out); err == nil {
		t.Error("unreachable server should fail")
	}
}

func TestServeModeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-serve", "-clients", "0"}, &out); err == nil {
		t.Error("zero clients should fail")
	}
	if err := run(context.Background(), []string{"-serve", "-dataset", "nope", "-base", "100"}, &out); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run(context.Background(), []string{"-serve", "-algo", "nope", "-base", "100"}, &out); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-base", "1500", "-t", "200", "-exp", "table2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset,KDS,BBST") {
		t.Fatalf("csv header missing:\n%s", out.String())
	}
	var bad bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "table2", "-format", "xml"}, &bad); err == nil {
		t.Fatal("unknown format should fail")
	}
}

// TestRunCanceled: a canceled context (the Ctrl-C path) stops the
// run between experiments with ctx.Err, not a partial render.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	if err := run(ctx, []string{"-base", "1500", "-t", "200", "-exp", "table2"}, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := run(ctx, []string{"-serve", "-base", "2000", "-clients", "2", "-requests", "2", "-reqt", "100"}, &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("serve mode: err = %v, want context.Canceled", err)
	}
}
