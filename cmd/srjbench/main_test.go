package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range paperOrder {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-base", "1500", "-t", "300", "-exp", "table2,figure9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Error("output missing Table II")
	}
	if !strings.Contains(out.String(), "Figure 9") {
		t.Error("output missing Figure 9")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "tableX"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestServeMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-serve", "-base", "2000", "-clients", "4",
		"-requests", "5", "-reqt", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"engine built once",
		"4 clients x 5 requests x 200 samples/request",
		"samples/sec",
		"rebuild-per-request baseline",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serve output missing %q:\n%s", want, out.String())
		}
	}
}

func TestServeModeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-serve", "-clients", "0"}, &out); err == nil {
		t.Error("zero clients should fail")
	}
	if err := run([]string{"-serve", "-dataset", "nope", "-base", "100"}, &out); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-serve", "-algo", "nope", "-base", "100"}, &out); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-base", "1500", "-t", "200", "-exp", "table2", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset,KDS,BBST") {
		t.Fatalf("csv header missing:\n%s", out.String())
	}
	var bad bytes.Buffer
	if err := run([]string{"-exp", "table2", "-format", "xml"}, &bad); err == nil {
		t.Fatal("unknown format should fail")
	}
}
