// Command srjbench reproduces the paper's evaluation: every table and
// figure of Section V, at a configurable scale. It also has a serving
// throughput mode (-serve) that builds an Engine once and hammers it
// with concurrent clients, reporting aggregate samples/sec against a
// rebuild-per-request baseline.
//
// Usage:
//
//	srjbench                      # run everything at the default scale
//	srjbench -exp table3,figure9  # selected experiments only
//	srjbench -base 100000         # larger datasets (castreet=base .. nyc=8*base)
//	srjbench -t 1000000 -l 50     # override samples and window size
//	srjbench -list
//	srjbench -serve -base 100000 -clients 8 -requests 100 -reqt 10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	srj "repro"
	"repro/internal/exp"
)

// paperOrder is the presentation order of the experiments when running
// everything.
var paperOrder = []string{"table2", "figure4", "accuracy", "table3", "table4",
	"figure5", "figure6", "figure7", "figure8", "figure9"}

// run executes srjbench with explicit arguments and output so tests
// can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srjbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		base    = fs.Int("base", 50000, "base dataset size; the four datasets use base, 2x, 4x, 8x")
		t       = fs.Int("t", 100000, "number of samples per run (the paper's t, scaled)")
		l       = fs.Float64("l", 100, "window half-extent (the paper's l)")
		seed    = fs.Uint64("seed", 1, "seed for data generation and sampling")
		expList = fs.String("exp", "", "comma-separated experiments to run (default: all)")
		format  = fs.String("format", "table", "output format: table or csv")
		list    = fs.Bool("list", false, "list experiment names and exit")

		serve    = fs.Bool("serve", false, "serving throughput mode: hammer an Engine with concurrent clients")
		dataset  = fs.String("dataset", "nyc", "serve mode: dataset for R and S (each of size -base)")
		algo     = fs.String("algo", "bbst", "serve mode: sampling algorithm")
		clients  = fs.Int("clients", runtime.NumCPU(), "serve mode: concurrent client goroutines")
		requests = fs.Int("requests", 100, "serve mode: requests per client")
		reqT     = fs.Int("reqt", 10000, "serve mode: samples per request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serve {
		return runServe(stdout, serveConfig{
			dataset:  *dataset,
			n:        *base,
			l:        *l,
			seed:     *seed,
			algo:     srj.Algorithm(*algo),
			clients:  *clients,
			requests: *requests,
			reqT:     *reqT,
		})
	}

	scale := exp.DefaultScale(*base)
	scale.T = *t
	scale.L = *l
	scale.Seed = *seed
	runners := exp.Runners(scale)

	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	if *list {
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	selected := paperOrder
	if *expList != "" {
		selected = strings.Split(*expList, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(names, ", "))
		}
		start := time.Now()
		tbl, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch *format {
		case "table":
			fmt.Fprintln(stdout, tbl.Render())
			fmt.Fprintf(stdout, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		case "csv":
			fmt.Fprint(stdout, tbl.CSV())
			fmt.Fprintln(stdout)
		default:
			return fmt.Errorf("unknown format %q (table or csv)", *format)
		}
	}
	return nil
}

// serveConfig parameterizes the serving throughput mode.
type serveConfig struct {
	dataset  string
	n        int
	l        float64
	seed     uint64
	algo     srj.Algorithm
	clients  int
	requests int
	reqT     int
}

// runServe builds an Engine once and hammers it with clients×requests
// concurrent sampling requests of reqT samples each, then reports the
// aggregate throughput next to a rebuild-per-request baseline (what a
// service calling the one-shot srj.Sample per query would pay).
func runServe(stdout io.Writer, cfg serveConfig) error {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.reqT < 1 {
		return fmt.Errorf("serve mode needs positive -clients, -requests, -reqt")
	}
	R, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed)
	if err != nil {
		return err
	}
	S, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed+1)
	if err != nil {
		return err
	}
	opts := &srj.Options{Algorithm: cfg.algo, Seed: cfg.seed}

	fmt.Fprintf(stdout, "serve: algorithm=%s dataset=%s n=m=%d l=%g\n",
		cfg.algo, cfg.dataset, cfg.n, cfg.l)

	buildStart := time.Now()
	eng, err := srj.NewEngine(R, S, cfg.l, opts)
	if err != nil {
		return err
	}
	if err := eng.Warm(cfg.clients); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "engine built once in %v (%.1f MiB of shared structures)\n",
		time.Since(buildStart).Round(time.Millisecond),
		float64(eng.SizeBytes())/(1<<20))

	fmt.Fprintf(stdout, "%d clients x %d requests x %d samples/request\n",
		cfg.clients, cfg.requests, cfg.reqT)
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	start := time.Now()
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]srj.Pair, cfg.reqT)
			for req := 0; req < cfg.requests; req++ {
				if _, err := eng.SampleInto(buf); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	engineRate := float64(st.Samples) / elapsed.Seconds()
	fmt.Fprintf(stdout, "served %d requests (%d samples) in %v\n",
		st.Requests, st.Samples, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "throughput: %.3g samples/sec, %.1f requests/sec\n",
		engineRate, float64(st.Requests)/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: avg %v, max %v\n",
		st.AvgLatency().Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))

	// Rebuild-per-request baseline at the same concurrency: every
	// request pays the full build-count-sample pipeline, as a service
	// calling the one-shot srj.Sample per query would. Two requests
	// per client keep the baseline affordable while damping variance.
	const baselineRequests = 2
	rebuildStart := time.Now()
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for req := 0; req < baselineRequests; req++ {
				if _, err := srj.Sample(R, S, cfg.l, cfg.reqT, opts); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	rebuild := time.Since(rebuildStart)
	nBaseline := cfg.clients * baselineRequests
	rebuildRate := float64(nBaseline*cfg.reqT) / rebuild.Seconds()
	fmt.Fprintf(stdout, "rebuild-per-request baseline (%d clients x %d requests): %v per request => %.3g samples/sec (engine is %.1fx faster)\n",
		cfg.clients, baselineRequests,
		(rebuild / time.Duration(baselineRequests)).Round(time.Millisecond),
		rebuildRate, engineRate/rebuildRate)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "srjbench: %v\n", err)
		os.Exit(1)
	}
}
