// Command srjbench reproduces the paper's evaluation: every table and
// figure of Section V, at a configurable scale. It also has a serving
// throughput mode (-serve) that builds an Engine once and hammers it
// with concurrent clients, reporting aggregate samples/sec against a
// rebuild-per-request baseline; with -remote the same measurement
// runs over the wire against a live srjserver, comparing its cached-
// engine path (registry hits) to rebuild-per-request (distinct keys).
//
// Usage:
//
//	srjbench                      # run everything at the default scale
//	srjbench -exp table3,figure9  # selected experiments only
//	srjbench -base 100000         # larger datasets (castreet=base .. nyc=8*base)
//	srjbench -t 1000000 -l 50     # override samples and window size
//	srjbench -list
//	srjbench -serve -base 100000 -clients 8 -requests 100 -reqt 10000
//	srjbench -serve -remote http://localhost:8080 -dataset nyc -reqt 10000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	srj "repro"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/server"
)

// paperOrder is the presentation order of the experiments when running
// everything.
var paperOrder = []string{"table2", "figure4", "accuracy", "table3", "table4",
	"figure5", "figure6", "figure7", "figure8", "figure9"}

// baselineSeedOffset displaces the rebuild-baseline's throwaway
// registry keys far from any seed a user would pass by hand, so the
// baseline never collides with the bench key (or an interactively
// warmed engine) on a shared server.
const baselineSeedOffset = uint64(1) << 32

// run executes srjbench with explicit arguments and output so tests
// can drive it directly. Cancelling ctx (main wires it to SIGINT and
// SIGTERM) stops the run cleanly between experiments and between
// sampling batches, never mid-write.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srjbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		base    = fs.Int("base", 50000, "base dataset size; the four datasets use base, 2x, 4x, 8x")
		t       = fs.Int("t", 100000, "number of samples per run (the paper's t, scaled)")
		l       = fs.Float64("l", 100, "window half-extent (the paper's l)")
		seed    = fs.Uint64("seed", 1, "seed for data generation and sampling; also bases the serve mode rebuild-baseline key space, so runs are reproducible (0 = derive from the clock for guaranteed-fresh keys)")
		expList = fs.String("exp", "", "comma-separated experiments to run (default: all)")
		format  = fs.String("format", "table", "output format: table or csv")
		list    = fs.Bool("list", false, "list experiment names and exit")

		serve    = fs.Bool("serve", false, "serving throughput mode: hammer an Engine with concurrent clients")
		remote   = fs.String("remote", "", "serve mode: benchmark a running srjserver at this base URL instead of an in-process Engine; several comma-separated URLs shard the bench through a consistent-hash Router")
		dataset  = fs.String("dataset", "nyc", "serve mode: dataset for R and S (each of size -base)")
		algo     = fs.String("algo", "bbst", "serve mode: sampling algorithm")
		clients  = fs.Int("clients", runtime.NumCPU(), "serve mode: concurrent client goroutines")
		requests = fs.Int("requests", 100, "serve mode: requests per client")
		reqT     = fs.Int("reqt", 10000, "serve mode: samples per request")
		updRate  = fs.Float64("update-rate", 0, "serve mode: fraction of requests that are insert/delete batches instead of draws (0 disables; local mode serves through a mutable Store, remote mode posts /v1/update — which mutates the server-side dataset for the benched key)")
		metrics  = fs.Bool("metrics", false, "serve mode: dump a Prometheus text-exposition snapshot of the bench's draw metrics after the run")
		replicas = fs.Int("read-replicas", 0, "remote serve mode: spread the benched key's draws across its first k healthy backends (needs -remote with at least 2 URLs; 0 = single home backend)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serve {
		if *updRate < 0 || *updRate >= 1 {
			return fmt.Errorf("-update-rate must be in [0, 1), got %g", *updRate)
		}
		cfg := serveConfig{
			dataset:    *dataset,
			n:          *base,
			l:          *l,
			seed:       *seed,
			algo:       srj.Algorithm(*algo),
			clients:    *clients,
			requests:   *requests,
			reqT:       *reqT,
			updateRate: *updRate,
			metrics:    *metrics,
		}
		cfg.readReplicas = *replicas
		if *replicas != 0 && *remote == "" {
			return fmt.Errorf("-read-replicas needs -remote: replica spread is a router property, and the local mode has no fleet")
		}
		if *remote != "" {
			// The dataset lives server-side in remote mode, so a
			// locally-set -base would silently mean nothing; refuse
			// rather than let a benchmark measure the wrong workload.
			baseSet := false
			fs.Visit(func(f *flag.Flag) { baseSet = baseSet || f.Name == "base" })
			if baseSet {
				return fmt.Errorf("-base has no effect with -remote: the dataset size is the server's -n; restart srjserver with the size you want to measure")
			}
			return runServeRemote(ctx, stdout, cfg, *remote)
		}
		return runServe(ctx, stdout, cfg)
	}

	scale := exp.DefaultScale(*base)
	scale.T = *t
	scale.L = *l
	scale.Seed = *seed
	runners := exp.Runners(scale)

	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	if *list {
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	selected := paperOrder
	if *expList != "" {
		selected = strings.Split(*expList, ",")
	}
	for _, name := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		name = strings.TrimSpace(name)
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(names, ", "))
		}
		start := time.Now()
		tbl, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch *format {
		case "table":
			fmt.Fprintln(stdout, tbl.Render())
			fmt.Fprintf(stdout, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		case "csv":
			fmt.Fprint(stdout, tbl.CSV())
			fmt.Fprintln(stdout)
		default:
			return fmt.Errorf("unknown format %q (table or csv)", *format)
		}
	}
	return nil
}

// serveConfig parameterizes the serving throughput mode.
type serveConfig struct {
	dataset    string
	n          int
	l          float64
	seed       uint64
	algo       srj.Algorithm
	clients    int
	requests   int
	reqT       int
	updateRate float64 // fraction of requests that are update batches
	metrics    bool    // dump an exposition snapshot after the run
	// readReplicas spreads the benched key's draws over its first k
	// healthy backends (remote fleet mode only); the per-backend
	// request counters printed after the run show the spread.
	readReplicas int
}

// printLatencyQuantiles reports p50/p95/p99 interpolated from a draw
// latency histogram; a run too short to fill any bucket prints
// nothing rather than NaNs.
func printLatencyQuantiles(stdout io.Writer, snap obs.HistogramSnapshot) {
	printQuantiles(stdout, "latency", snap)
}

// printQuantiles reports p50/p95/p99 under a caller-chosen label, so
// the mixed workload prints draw and apply latency side by side.
func printQuantiles(stdout io.Writer, what string, snap obs.HistogramSnapshot) {
	p50, p95, p99 := snap.Quantile(0.50), snap.Quantile(0.95), snap.Quantile(0.99)
	if math.IsNaN(p50) {
		return
	}
	fmt.Fprintf(stdout, "%s quantiles: p50 %v, p95 %v, p99 %v\n", what,
		time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
		time.Duration(p95*float64(time.Second)).Round(time.Microsecond),
		time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
}

// dumpExposition renders the bench's own draw metrics in the same
// Prometheus text shape srjserver's GET /metrics serves, so the
// output pastes straight into exposition-aware tooling.
func dumpExposition(stdout io.Writer, algo string, snap obs.HistogramSnapshot, samples uint64) {
	m := obs.NewMetricSet()
	label := obs.L(obs.LabelAlgorithm, algo)
	m.Histogram(obs.MetricDrawDuration, "Draw latency as observed by srjbench.", snap, label)
	m.Counter(obs.MetricDrawSamples, "Join samples drawn by srjbench.", float64(samples), label)
	fmt.Fprintln(stdout, "--- metrics snapshot ---")
	if _, err := m.WriteTo(stdout); err != nil {
		fmt.Fprintf(stdout, "warning: metrics snapshot failed: %v\n", err)
	}
}

// hammer fans clients goroutines out, each issuing requests calls of
// do, and returns the first error any client hit. Both serve modes
// use it for their measured phase and their baseline. A canceled ctx
// stops every client between requests (the Source draws inside do
// also honor it between batches).
func hammer(ctx context.Context, clients, requests int, do func(client, req int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				if err := do(i, r); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runMixed is the mixed read/write hammer behind -update-rate: each
// request is a draw through src, or — with probability
// cfg.updateRate — an insert/delete batch through apply. Each client
// inserts points with IDs from its own range and deletes the batch it
// inserted two updates earlier, so the dataset churns at a steady
// size instead of growing without bound.
func runMixed(ctx context.Context, stdout io.Writer, cfg serveConfig, src srj.Source, apply func(ctx context.Context, u srj.Update) (uint64, error), timeout time.Duration) error {
	fmt.Fprintf(stdout, "%d clients x %d requests x %d samples/request, update rate %.2f\n",
		cfg.clients, cfg.requests, cfg.reqT, cfg.updateRate)
	const batchPts = 4 // points inserted per side per update batch
	type clientState struct {
		rng     *rand.Rand
		batches int       // update batches this client has issued
		prev    [][]int32 // ID batches awaiting deletion (fifo, depth 2)
	}
	states := make([]*clientState, cfg.clients)
	for i := range states {
		states[i] = &clientState{rng: rand.New(rand.NewSource(int64(cfg.seed) + int64(i)*7919))}
	}
	var draws, drawSamples, updates, updateOps atomic.Int64
	var lastGen atomic.Uint64
	hist := obs.NewHistogram(obs.DrawDurationBuckets)
	// Apply latency gets its own histogram: the in-place write path's
	// acceptance criterion is that these quantiles stay flat as the
	// accumulated delta grows, where the rebuild-based path showed
	// periodic spikes at every threshold crossing.
	applyHist := obs.NewHistogram(obs.DrawDurationBuckets)
	domain := 10_000.0
	start := time.Now()
	err := hammer(ctx, cfg.clients, cfg.requests, func(client, _ int) error {
		reqCtx := ctx
		if timeout > 0 {
			var cancel context.CancelFunc
			reqCtx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		st := states[client]
		if st.rng.Float64() >= cfg.updateRate {
			drawStart := time.Now()
			err := src.DrawFunc(reqCtx, srj.Request{T: cfg.reqT}, func([]srj.Pair) error { return nil })
			if err == nil {
				hist.Observe(time.Since(drawStart).Seconds())
				draws.Add(1)
				drawSamples.Add(int64(cfg.reqT))
			}
			return err
		}
		// IDs far above any generated dataset's range, disjoint per
		// client and never reused: (1<<28) + client*(1<<20) + counter.
		idBase := int32(1<<28) + int32(client)<<20 + int32(st.batches)*2*batchPts
		st.batches++
		u := srj.Update{}
		ids := make([]int32, 0, 2*batchPts)
		for i := 0; i < batchPts; i++ {
			id := idBase + int32(i)
			u.InsertR = append(u.InsertR, srj.Point{ID: id, X: st.rng.Float64() * domain, Y: st.rng.Float64() * domain})
			ids = append(ids, id)
		}
		for i := 0; i < batchPts; i++ {
			id := idBase + int32(batchPts+i)
			u.InsertS = append(u.InsertS, srj.Point{ID: id, X: st.rng.Float64() * domain, Y: st.rng.Float64() * domain})
			ids = append(ids, id)
		}
		if len(st.prev) >= 2 {
			old := st.prev[0]
			st.prev = st.prev[1:]
			u.DeleteR = append(u.DeleteR, old[:batchPts]...)
			u.DeleteS = append(u.DeleteS, old[batchPts:]...)
		}
		st.prev = append(st.prev, ids)
		applyStart := time.Now()
		gen, err := apply(reqCtx, u)
		if err != nil {
			return err
		}
		applyHist.Observe(time.Since(applyStart).Seconds())
		updates.Add(1)
		updateOps.Add(int64(len(u.InsertR) + len(u.InsertS) + len(u.DeleteR) + len(u.DeleteS)))
		for {
			cur := lastGen.Load()
			if gen <= cur || lastGen.CompareAndSwap(cur, gen) {
				break
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "mixed workload finished in %v: %d draws (%d samples), %d update batches (%d ops), dataset at generation %d\n",
		elapsed.Round(time.Millisecond), draws.Load(), drawSamples.Load(), updates.Load(), updateOps.Load(), lastGen.Load())
	fmt.Fprintf(stdout, "throughput: %.3g samples/sec alongside %.1f updates/sec\n",
		float64(drawSamples.Load())/elapsed.Seconds(), float64(updates.Load())/elapsed.Seconds())
	printQuantiles(stdout, "draw latency", hist.Snapshot())
	printQuantiles(stdout, "apply latency", applyHist.Snapshot())
	if cfg.metrics {
		dumpExposition(stdout, string(cfg.algo), hist.Snapshot(), uint64(drawSamples.Load()))
	}
	return nil
}

// runServeMixedLocal is the -update-rate variant of runServe: the
// dataset is served through a mutable Store, and a fraction of the
// hammer's requests are update batches.
func runServeMixedLocal(ctx context.Context, stdout io.Writer, cfg serveConfig) error {
	R, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed)
	if err != nil {
		return err
	}
	S, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed+1)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve (mutable): algorithm=%s dataset=%s n=m=%d l=%g\n",
		cfg.algo, cfg.dataset, cfg.n, cfg.l)
	buildStart := time.Now()
	store, err := srj.NewStore(R, S, cfg.l, &srj.StoreOptions{Algorithm: cfg.algo, Seed: cfg.seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "store base built once in %v (%.1f MiB)\n",
		time.Since(buildStart).Round(time.Millisecond), float64(store.SizeBytes())/(1<<20))
	if err := runMixed(ctx, stdout, cfg, store, store.Apply, 0); err != nil {
		return err
	}
	// Let a threshold-triggered compaction finish so its cost lands
	// inside the bench, not in a dangling goroutine.
	if err := store.Quiesce(ctx); err != nil {
		return err
	}
	st := store.Stats()
	fmt.Fprintf(stdout, "store: generation %d, %d ops pending compaction, avg draw latency %v\n",
		store.Generation(), store.Pending(), st.AvgLatency().Round(time.Microsecond))
	fmt.Fprintf(stdout, "write path: %d ops absorbed in place, %d base rebuilds\n",
		store.InPlaceOps(), store.Rebuilds())
	return nil
}

// runServe builds an Engine once and hammers it with clients×requests
// concurrent sampling requests of reqT samples each through the
// Source API, then reports the aggregate throughput next to a
// rebuild-per-request baseline (what a service calling the one-shot
// srj.Sample per query would pay).
func runServe(ctx context.Context, stdout io.Writer, cfg serveConfig) error {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.reqT < 1 {
		return fmt.Errorf("serve mode needs positive -clients, -requests, -reqt")
	}
	if cfg.updateRate > 0 {
		return runServeMixedLocal(ctx, stdout, cfg)
	}
	R, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed)
	if err != nil {
		return err
	}
	S, err := srj.Generate(cfg.dataset, cfg.n, cfg.seed+1)
	if err != nil {
		return err
	}
	opts := &srj.Options{Algorithm: cfg.algo, Seed: cfg.seed}

	fmt.Fprintf(stdout, "serve: algorithm=%s dataset=%s n=m=%d l=%g\n",
		cfg.algo, cfg.dataset, cfg.n, cfg.l)

	buildStart := time.Now()
	eng, err := srj.NewEngine(R, S, cfg.l, opts)
	if err != nil {
		return err
	}
	if err := eng.Warm(cfg.clients); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "engine built once in %v (%.1f MiB of shared structures)\n",
		time.Since(buildStart).Round(time.Millisecond),
		float64(eng.SizeBytes())/(1<<20))

	fmt.Fprintf(stdout, "%d clients x %d requests x %d samples/request\n",
		cfg.clients, cfg.requests, cfg.reqT)
	bufs := make([][]srj.Pair, cfg.clients) // one reused buffer per client
	for i := range bufs {
		bufs[i] = make([]srj.Pair, cfg.reqT)
	}
	start := time.Now()
	if err := hammer(ctx, cfg.clients, cfg.requests, func(client, _ int) error {
		_, err := eng.Draw(ctx, srj.Request{Into: bufs[client]})
		return err
	}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	engineRate := float64(st.Samples) / elapsed.Seconds()
	fmt.Fprintf(stdout, "served %d requests (%d samples) in %v\n",
		st.Requests, st.Samples, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "throughput: %.3g samples/sec, %.1f requests/sec\n",
		engineRate, float64(st.Requests)/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: avg %v, max %v\n",
		st.AvgLatency().Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	printLatencyQuantiles(stdout, st.Latency)
	if cfg.metrics {
		dumpExposition(stdout, string(cfg.algo), st.Latency, st.Samples)
	}

	// Rebuild-per-request baseline at the same concurrency: every
	// request pays the full build-count-sample pipeline, as a service
	// calling the one-shot srj.Sample per query would. Two requests
	// per client keep the baseline affordable while damping variance.
	const baselineRequests = 2
	rebuildStart := time.Now()
	if err := hammer(ctx, cfg.clients, baselineRequests, func(_, _ int) error {
		_, err := srj.Sample(R, S, cfg.l, cfg.reqT, opts)
		return err
	}); err != nil {
		return err
	}
	rebuild := time.Since(rebuildStart)
	nBaseline := cfg.clients * baselineRequests
	rebuildRate := float64(nBaseline*cfg.reqT) / rebuild.Seconds()
	fmt.Fprintf(stdout, "rebuild-per-request baseline (%d clients x %d requests): %v per request => %.3g samples/sec (engine is %.1fx faster)\n",
		cfg.clients, baselineRequests,
		(rebuild / time.Duration(baselineRequests)).Round(time.Millisecond),
		rebuildRate, engineRate/rebuildRate)
	return nil
}

// remoteTarget abstracts what the remote bench talks to: one
// srjserver through a bound Client, or a fleet of them through a
// consistent-hash Router. Both bind keys to Sources, evict throwaway
// engines, and report registry stats — so the measured loop is
// literally the same code either way.
type remoteTarget interface {
	bind(key srj.EngineKey) srj.Source
	health(ctx context.Context) error
	evict(ctx context.Context, key srj.EngineKey) (bool, error)
	apply(ctx context.Context, key srj.EngineKey, u srj.Update) (uint64, error)
	printStats(ctx context.Context, stdout io.Writer) error
}

// clientTarget is a single srjserver.
type clientTarget struct{ cl *srj.Client }

func (t clientTarget) bind(key srj.EngineKey) srj.Source { return t.cl.Bind(key) }
func (t clientTarget) health(ctx context.Context) error  { return t.cl.Health(ctx) }
func (t clientTarget) evict(ctx context.Context, key srj.EngineKey) (bool, error) {
	return t.cl.EvictEngine(ctx, key)
}
func (t clientTarget) apply(ctx context.Context, key srj.EngineKey, u srj.Update) (uint64, error) {
	return t.cl.Bind(key).Apply(ctx, u)
}
func (t clientTarget) printStats(ctx context.Context, stdout io.Writer) error {
	st, err := t.cl.Stats(ctx)
	if err != nil {
		return err
	}
	printRegistryLine(stdout, "server", st)
	return nil
}

// routerTarget is a sharded fleet behind srj.Router.
type routerTarget struct{ rt *srj.Router }

func (t routerTarget) bind(key srj.EngineKey) srj.Source { return t.rt.Bind(key) }
func (t routerTarget) health(ctx context.Context) error  { return t.rt.Health(ctx) }
func (t routerTarget) evict(ctx context.Context, key srj.EngineKey) (bool, error) {
	return t.rt.EvictEngine(ctx, key)
}
func (t routerTarget) apply(ctx context.Context, key srj.EngineKey, u srj.Update) (uint64, error) {
	res, err := t.rt.ApplyUpdate(ctx, key, u)
	return res.Generation, err
}
func (t routerTarget) printStats(ctx context.Context, stdout io.Writer) error {
	// ServerStats returns whatever the reachable backends answered
	// alongside the first error; a shard that died during the bench
	// must not erase the numbers the survivors reported.
	stats, err := t.rt.ServerStats(ctx)
	if len(stats) == 0 {
		return err
	}
	for _, b := range t.rt.Backends() {
		if st, ok := stats[b]; ok {
			printRegistryLine(stdout, b, st)
		}
	}
	for _, b := range t.rt.Stats().Backends {
		fmt.Fprintf(stdout, "router: %s healthy=%v %d requests, %d failures, %d failovers\n",
			b.Addr, b.Healthy, b.Requests, b.Failures, b.Failovers)
	}
	if err != nil {
		fmt.Fprintf(stdout, "warning: some backends unreachable for stats: %v\n", err)
	}
	return nil
}

func printRegistryLine(stdout io.Writer, who string, st srj.ServerStats) {
	fmt.Fprintf(stdout, "%s registry: %d hits, %d misses, %d builds, %d budget evictions, %d resident engines (%.1f MiB)\n",
		who, st.Registry.Hits, st.Registry.Misses, st.Registry.Builds, st.Registry.Evictions,
		st.Registry.Entries, float64(st.Registry.Bytes)/(1<<20))
}

// runServeRemote benchmarks a running srjserver (or, with several
// comma-separated addresses, a sharded fleet through a Router) over
// the wire, through the same Source API the local mode uses — the
// bound client or router is a drop-in for the in-process Engine. The
// cached-engine path hammers one (dataset, l, algorithm, seed) key —
// after the first request every one is a registry hit — then a
// rebuild-per-request baseline gives every request a distinct seed,
// forcing a registry miss and a full preprocessing pass per request
// (with a router, those distinct keys also spread across the ring,
// which is the horizontal-scaling story measured end to end). The
// ratio is the network-served version of the paper's amortization
// argument.
func runServeRemote(ctx context.Context, stdout io.Writer, cfg serveConfig, base string) error {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.reqT < 1 {
		return fmt.Errorf("serve mode needs positive -clients, -requests, -reqt")
	}
	// Every call is bounded: a quick probe for reachability, then a
	// generous per-request ceiling so a stalled server fails the
	// bench instead of hanging it forever. The transport keeps one
	// idle connection per client goroutine — http.DefaultClient's two
	// would churn TCP connections and understate cached throughput.
	const requestTimeout = 5 * time.Minute
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = cfg.clients
	hc := &http.Client{Transport: transport}

	var addrs []string
	for _, a := range strings.Split(base, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	var target remoteTarget
	switch len(addrs) {
	case 0:
		return fmt.Errorf("-remote needs at least one base URL")
	case 1:
		if cfg.readReplicas > 1 {
			return fmt.Errorf("-read-replicas %d needs at least 2 -remote URLs: one backend has nothing to spread over", cfg.readReplicas)
		}
		target = clientTarget{cl: srj.NewClientHTTP(addrs[0], hc)}
	default:
		rt, err := srj.NewRouter(addrs, srj.RouterOptions{HTTPClient: hc, ReadReplicas: cfg.readReplicas})
		if err != nil {
			return err
		}
		defer rt.Close()
		target = routerTarget{rt: rt}
		if cfg.readReplicas > 1 {
			fmt.Fprintf(stdout, "read replicas: %d (the per-backend request counts after the run show the spread)\n", cfg.readReplicas)
		}
	}

	healthCtx, cancelHealth := context.WithTimeout(ctx, 10*time.Second)
	err := target.health(healthCtx)
	cancelHealth()
	if err != nil {
		return fmt.Errorf("srjserver at %s not reachable: %w", base, err)
	}
	fmt.Fprintf(stdout, "remote serve: %s algorithm=%s dataset=%s (server-side data) l=%g\n",
		base, cfg.algo, cfg.dataset, cfg.l)

	key := srj.EngineKey{
		Dataset: cfg.dataset,
		L:       cfg.l,
		// Normalized at mint: the key is also used for eviction and
		// updates, which must address exactly the engine the draws hit.
		Algorithm: server.NormalizeAlgorithm(string(cfg.algo)),
		Seed:      cfg.seed,
	}
	src := target.bind(key)

	// Warm the key so the timed section measures the cached path,
	// exactly as the local mode builds its Engine outside the timer.
	warmStart := time.Now()
	warmCtx, cancelWarm := context.WithTimeout(ctx, requestTimeout)
	_, err = src.Draw(warmCtx, srj.Request{T: 1})
	cancelWarm()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "engine warmed through the registry in %v\n",
		time.Since(warmStart).Round(time.Millisecond))

	if cfg.updateRate > 0 {
		// Mixed read/write mode: a fraction of requests post
		// /v1/update batches (mutating the server-side dataset for
		// this key); the rest draw as usual. The rebuild-per-request
		// baseline is skipped — update batches already exercise the
		// server's build path through generation bumps.
		err := runMixed(ctx, stdout, cfg, src, func(ctx context.Context, u srj.Update) (uint64, error) {
			return target.apply(ctx, key, u)
		}, requestTimeout)
		if err != nil {
			return err
		}
		statsCtx, cancelStats := context.WithTimeout(ctx, 10*time.Second)
		defer cancelStats()
		return target.printStats(statsCtx, stdout)
	}

	fmt.Fprintf(stdout, "%d clients x %d requests x %d samples/request\n",
		cfg.clients, cfg.requests, cfg.reqT)
	// Client-observed latency: the wire round trip, not just the
	// server-side draw — the number a real client of this fleet sees.
	hist := obs.NewHistogram(obs.DrawDurationBuckets)
	start := time.Now()
	if err := hammer(ctx, cfg.clients, cfg.requests, func(_, _ int) error {
		reqCtx, cancel := context.WithTimeout(ctx, requestTimeout)
		defer cancel()
		reqStart := time.Now()
		err := src.DrawFunc(reqCtx, srj.Request{T: cfg.reqT}, func([]srj.Pair) error { return nil })
		if err == nil {
			hist.Observe(time.Since(reqStart).Seconds())
		}
		return err
	}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	nRequests := cfg.clients * cfg.requests
	nSamples := nRequests * cfg.reqT
	cachedRate := float64(nSamples) / elapsed.Seconds()
	fmt.Fprintf(stdout, "served %d requests (%d samples) in %v\n", nRequests, nSamples, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "cached-engine throughput: %.3g samples/sec, %.1f requests/sec\n",
		cachedRate, float64(nRequests)/elapsed.Seconds())
	printLatencyQuantiles(stdout, hist.Snapshot())
	if cfg.metrics {
		dumpExposition(stdout, string(cfg.algo), hist.Snapshot(), uint64(nSamples))
	}

	// Rebuild-per-request baseline: a distinct seed per request is a
	// distinct registry key, so the server pays a full preprocessing
	// pass for every one. The seed base derives from -seed (offset far
	// from the bench key's own seed) so runs are reproducible; a clean
	// run evicts its throwaway engines below, so repeated runs rebuild
	// rather than silently measuring cache hits. -seed 0 falls back to
	// the wall clock: guaranteed-fresh keys even after a crashed run
	// stranded engines in a long-lived server's cache. Two requests
	// per client keep the baseline affordable.
	const baselineRequests = 2
	seedBase := cfg.seed + baselineSeedOffset
	if cfg.seed == 0 {
		seedBase = uint64(time.Now().UnixNano())
	}
	var seedCounter atomic.Uint64
	// The baseline's throwaway engines would otherwise crowd a
	// long-lived server's cache; evict whatever was inserted on every
	// exit path, failed baselines included.
	defer func() {
		// Eviction must run even when ctx was canceled — that is the
		// Ctrl-C path, and it must not strand throwaway engines.
		evictCtx, cancelEvict := context.WithTimeout(context.WithoutCancel(ctx), time.Minute)
		defer cancelEvict()
		evicted := 0
		for i := uint64(1); i <= seedCounter.Load(); i++ {
			bkey := key
			bkey.Seed = seedBase + i
			ok, err := target.evict(evictCtx, bkey)
			if err != nil {
				// Keep going: one failed eviction must not strand the
				// remaining throwaway engines.
				fmt.Fprintf(stdout, "warning: could not evict baseline engine %s: %v\n", bkey, err)
				continue
			}
			if ok {
				evicted++
			}
		}
		fmt.Fprintf(stdout, "evicted %d baseline engines from the server cache\n", evicted)
	}()
	rebuildStart := time.Now()
	if err := hammer(ctx, cfg.clients, baselineRequests, func(_, _ int) error {
		bkey := key
		bkey.Seed = seedBase + seedCounter.Add(1)
		reqCtx, cancel := context.WithTimeout(ctx, requestTimeout)
		defer cancel()
		return target.bind(bkey).DrawFunc(reqCtx, srj.Request{T: cfg.reqT}, func([]srj.Pair) error { return nil })
	}); err != nil {
		return err
	}
	rebuild := time.Since(rebuildStart)
	nBaseline := cfg.clients * baselineRequests
	rebuildRate := float64(nBaseline*cfg.reqT) / rebuild.Seconds()
	fmt.Fprintf(stdout, "rebuild-per-request baseline (%d clients x %d requests, distinct seeds): %v per request => %.3g samples/sec (cached engine is %.1fx faster)\n",
		cfg.clients, baselineRequests,
		(rebuild / time.Duration(baselineRequests)).Round(time.Millisecond),
		rebuildRate, cachedRate/rebuildRate)

	statsCtx, cancelStats := context.WithTimeout(ctx, 10*time.Second)
	defer cancelStats()
	return target.printStats(statsCtx, stdout)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "srjbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "srjbench: %v\n", err)
		os.Exit(1)
	}
}
