// Command srjbench reproduces the paper's evaluation: every table and
// figure of Section V, at a configurable scale.
//
// Usage:
//
//	srjbench                      # run everything at the default scale
//	srjbench -exp table3,figure9  # selected experiments only
//	srjbench -base 100000         # larger datasets (castreet=base .. nyc=8*base)
//	srjbench -t 1000000 -l 50     # override samples and window size
//	srjbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/exp"
)

// paperOrder is the presentation order of the experiments when running
// everything.
var paperOrder = []string{"table2", "figure4", "accuracy", "table3", "table4",
	"figure5", "figure6", "figure7", "figure8", "figure9"}

// run executes srjbench with explicit arguments and output so tests
// can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srjbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		base    = fs.Int("base", 50000, "base dataset size; the four datasets use base, 2x, 4x, 8x")
		t       = fs.Int("t", 100000, "number of samples per run (the paper's t, scaled)")
		l       = fs.Float64("l", 100, "window half-extent (the paper's l)")
		seed    = fs.Uint64("seed", 1, "seed for data generation and sampling")
		expList = fs.String("exp", "", "comma-separated experiments to run (default: all)")
		format  = fs.String("format", "table", "output format: table or csv")
		list    = fs.Bool("list", false, "list experiment names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := exp.DefaultScale(*base)
	scale.T = *t
	scale.L = *l
	scale.Seed = *seed
	runners := exp.Runners(scale)

	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	if *list {
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	selected := paperOrder
	if *expList != "" {
		selected = strings.Split(*expList, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(name)
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(names, ", "))
		}
		start := time.Now()
		tbl, err := runner()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch *format {
		case "table":
			fmt.Fprintln(stdout, tbl.Render())
			fmt.Fprintf(stdout, "(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		case "csv":
			fmt.Fprint(stdout, tbl.CSV())
			fmt.Fprintln(stdout)
		default:
			return fmt.Errorf("unknown format %q (table or csv)", *format)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "srjbench: %v\n", err)
		os.Exit(1)
	}
}
