package srj

// The network serving layer: srj.NewServer assembles the engine
// registry and HTTP API of internal/registry and internal/server
// into an http.Handler, and srj.NewClient speaks its wire protocol.
// cmd/srjserver is a thin flag-parsing shell around NewServer; any
// program can embed the same handler in its own http.Server.

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/wal"
)

// RequestIDHeader is the header carrying the fleet's request ID
// across every hop (client → router → backend); servers mint one when
// the caller does not supply it, and every response echoes it.
const RequestIDHeader = obs.RequestIDHeader

// WithRequestID returns a context carrying a request ID: a Client
// draw with this context sends the ID upstream, so one ID names the
// whole path of a draw in every tier's logs and error values.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string { return obs.RequestIDFrom(ctx) }

// EngineKey identifies one cacheable engine on a Server: the named
// dataset pair, the window half-extent, the algorithm, and the
// engine seed.
type EngineKey = registry.Key

// RegistryStats aggregates a Server's cache counters.
type RegistryStats = registry.Stats

// EngineInfo describes one engine resident in a Server's registry.
type EngineInfo = registry.EntryInfo

// SampleRequest is the body of the serving API's POST /v1/sample.
type SampleRequest = server.SampleRequest

// ServerStats is the body of the serving API's GET /v1/stats.
type ServerStats = server.StatsResponse

// Client speaks the srjserver wire protocol; construct with
// NewClient. The embedded methods (Sample, SampleFunc, SampleJSON,
// Stats, Engines, EvictEngine, Health) form the low-level multi-key
// API, addressing a full SampleRequest per call; Bind fixes one
// engine key and turns the client into a Source, the same
// request/response contract the in-process Engine serves.
type Client struct {
	*server.Client

	key   EngineKey // the Source key, when bound
	bound bool
}

// APIError is a non-2xx answer from a Server. It unwraps to the
// canonical sentinel matching its wire-level error code, so
// errors.Is(err, ErrSampleCap), ErrBadRequest, ErrEmptyJoin, and
// ErrLowAcceptance work identically against local and remote sources.
type APIError = server.APIError

// NewClient returns a client for the srjserver-compatible server at
// base (e.g. "http://localhost:8080") using http.DefaultClient. Note
// http.DefaultClient keeps only two idle connections per host; for
// many concurrent request goroutines use NewClientHTTP with a
// transport sized to the concurrency (as srjbench -remote does).
func NewClient(base string) *Client { return &Client{Client: server.NewClient(base, nil)} }

// NewClientHTTP is NewClient with a caller-supplied http.Client, for
// control over connection pooling, TLS, and transport-level
// timeouts (per-request deadlines belong in the context instead).
func NewClientHTTP(base string, hc *http.Client) *Client {
	return &Client{Client: server.NewClient(base, hc)}
}

// ServerOptions configures NewServer. The zero value serves the
// built-in dataset generators at 100k points per side with a 1 GiB
// engine budget.
type ServerOptions struct {
	// Datasets resolves a dataset name to the two point sets being
	// joined. nil uses the built-in generators (DatasetNames) with
	// DatasetSize points per side: R from DatasetSeed, S from
	// DatasetSeed+1. A non-nil resolver must be safe for concurrent
	// use and deterministic — the registry assumes equal names mean
	// equal data.
	Datasets func(name string) (R, S []Point, err error)
	// DatasetSize is the per-side size the default resolver
	// generates (default 100_000). Ignored when Datasets is set.
	DatasetSize int
	// DatasetSeed seeds the default resolver's generators (default
	// 1). Ignored when Datasets is set.
	DatasetSeed uint64
	// MemoryBudget bounds the summed SizeBytes of cached engines;
	// least-recently-used engines are evicted beyond it. 0 means
	// 1 GiB; negative means unlimited.
	MemoryBudget int64
	// MaxT caps the samples one request may ask for (default
	// server.DefaultMaxT = 1e6). Every engine the server builds gets
	// this as its Engine.SetMaxT cap too.
	MaxT int
	// Timeout bounds one request end to end, engine build included
	// (default 30s).
	Timeout time.Duration
	// Logger receives the server's structured logs (access log at
	// Info, slow draws at Warn). nil disables logging.
	Logger *slog.Logger
	// SlowDraw, when positive, logs draws slower than it at Warn with
	// full attribution: request ID, key, generation, acceptance rate.
	SlowDraw time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// DataDir enables durability: every dynamic store writes ahead to
	// a per-dataset log under this directory, compactions persist
	// snapshots there, and NewServer recovers every dataset it finds
	// (snapshot + log replay) instead of resurrecting the seed data.
	// Empty means in-memory only — updates do not survive a restart.
	DataDir string
	// FsyncPolicy selects when log appends reach disk: "always" (the
	// default — an acknowledged update is never lost), "interval" (a
	// background flusher; a crash loses at most ~100ms of acks), or
	// "off" (the OS page cache decides). Ignored without DataDir.
	FsyncPolicy string
}

// Server is the serving subsystem as an embeddable http.Handler:
// an engine registry (memory-budgeted, build-deduplicating) behind
// the HTTP API of internal/server. Create with NewServer.
type Server struct {
	h      *server.Server
	reg    *registry.Registry
	stores *dynamic.Stores
	wal    *wal.Manager // nil without ServerOptions.DataDir
}

// NewServer assembles a serving stack from opts.
func NewServer(opts *ServerOptions) (*Server, error) {
	var o ServerOptions
	if opts != nil {
		o = *opts
	}
	if o.Datasets == nil {
		o.Datasets = BuiltinDatasets(o.DatasetSize, o.DatasetSeed)
	}
	// Resolvers are documented as deterministic — equal names mean
	// equal data — so resolutions are memoized with per-name
	// once-semantics: distinct keys on one dataset (different l,
	// algorithm, or seed) share one resolution even when their builds
	// race, instead of regenerating or reloading the points per
	// engine build. The memo is itself bounded (it lives outside the
	// engine MemoryBudget): only the most recently used few datasets
	// stay pinned here — anything older is re-resolved on next use,
	// and datasets serving resident engines are pinned by those
	// engines regardless. Failed resolutions are dropped so the next
	// request retries.
	o.Datasets = memoizeDatasets(o.Datasets)
	switch {
	case o.MemoryBudget == 0:
		o.MemoryBudget = 1 << 30
	case o.MemoryBudget < 0:
		o.MemoryBudget = 0 // registry convention: 0 = unlimited
	}
	if o.MaxT <= 0 {
		o.MaxT = server.DefaultMaxT
	}
	var mgr *wal.Manager
	if o.DataDir != "" {
		policy, err := wal.ParseSyncPolicy(o.FsyncPolicy)
		if err != nil {
			return nil, err
		}
		mgr, err = wal.OpenManager(o.DataDir, wal.Options{Sync: policy})
		if err != nil {
			return nil, err
		}
	}

	// validateKey front-runs both build paths: key problems are the
	// client's fault (wrapped ErrBadKey → HTTP 400); a failing build
	// on a valid key is the server's.
	validateKey := func(key EngineKey) error {
		if !knownAlgorithm(key.Algorithm) {
			return fmt.Errorf("%w: unknown algorithm %q (have %v)",
				server.ErrBadKey, key.Algorithm, Algorithms())
		}
		if !(key.L > 0) || math.IsInf(key.L, 0) {
			return fmt.Errorf("%w: half-extent must be positive and finite, got %g",
				server.ErrBadKey, key.L)
		}
		return nil
	}
	// Mutable datasets: a dynamic store springs into existence on the
	// first POST /v1/update addressed to its key, bulk-built from the
	// same resolver the static engines use; sampling then follows the
	// store's generation. reg is assigned below, before any store can
	// exist — the factory only runs on a live server's first update.
	var reg *registry.Registry
	stores := dynamic.NewStores(func(ctx context.Context, key EngineKey) (*dynamic.Store, error) {
		if err := validateKey(key); err != nil {
			return nil, err
		}
		R, S, err := o.Datasets(key.Dataset)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", server.ErrBadKey, err)
		}
		st, err := NewStore(R, S, key.L, &StoreOptions{
			Algorithm: Algorithm(key.Algorithm),
			Seed:      key.Seed,
			MaxT:      o.MaxT,
		})
		if err != nil {
			return nil, err
		}
		// Every generation bump — an Apply, or a background rebuild
		// swap that no handler observes — drops the registry engines
		// it just made stale, so a rebuild cannot strand a whole old
		// base in the cache until the next update arrives.
		st.st.SetOnGeneration(func(gen uint64) {
			stale := key
			stale.Generation = gen
			reg.EvictOlder(stale)
		})
		if mgr != nil {
			// A brand-new key (recovered keys never reach the factory —
			// they are adopted below before the server serves) gets a
			// fresh dataset directory to write ahead into.
			ds, err := mgr.Open(key)
			if err != nil {
				return nil, err
			}
			st.st.SetPersister(ds)
		}
		return st.st, nil
	})
	build := func(ctx context.Context, key EngineKey) (*engine.Engine, error) {
		if key.Generation != 0 {
			// A generation-tagged key is a dynamic store's view: the
			// "build" is a cheap handle fetch — the store already holds
			// the serving engine for its current generation. A stale
			// generation (an Apply won the race) is reported, never
			// cached, and retried by the handler with the fresh one.
			st, ok := stores.Lookup(key)
			if !ok {
				return nil, fmt.Errorf("%w: no dynamic store for %s", server.ErrBadKey, key)
			}
			gen, eng, err := st.ViewEngine()
			if err != nil {
				return nil, err
			}
			if gen != key.Generation {
				return nil, dynamic.ErrStaleGeneration
			}
			return eng, nil
		}
		if err := validateKey(key); err != nil {
			return nil, err
		}
		R, S, err := o.Datasets(key.Dataset)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", server.ErrBadKey, err)
		}
		eng, err := NewEngine(R, S, key.L, &Options{
			Algorithm: Algorithm(key.Algorithm),
			Seed:      key.Seed,
		})
		if err != nil {
			return nil, err
		}
		eng.SetMaxT(o.MaxT)
		return eng.e, nil
	}
	reg = registry.New(build, o.MemoryBudget)
	if mgr != nil {
		// Recovery: every dataset a previous process persisted comes
		// back as snapshot base + log replay — not the seed data — and
		// is adopted into the store map before the server serves its
		// first request. Any damage beyond a torn log tail refuses the
		// whole startup: serving a silently-shortened history would let
		// the router hand out update IDs the fleet disagrees on.
		keys, err := mgr.Keys()
		if err != nil {
			return nil, err
		}
		for _, key := range keys {
			if err := recoverDataset(mgr, stores, reg, key, &o); err != nil {
				return nil, fmt.Errorf("srj: recovering %s from %s: %w", key, o.DataDir, err)
			}
		}
	}
	// installStore backs POST /v1/snapshot/install: the router's state
	// transfer hands this server a dataset's complete store state when
	// it joins a live fleet, and the server adopts it at the dump's
	// generation and last-applied update ID — so the router's next
	// sequenced broadcast applies here gap-free.
	installStore := func(ctx context.Context, dump server.SnapshotDump) error {
		key := dump.Key()
		if err := validateKey(key); err != nil {
			return err
		}
		if st, ok := stores.Lookup(key); ok {
			// Idempotent re-install: state we already hold (same or
			// newer last-applied ID) acknowledges without rebuilding.
			// Installing *newer* state over a live store is refused —
			// the store owns its sequence, and the gap between its ID
			// and the dump's is the sequenced-update path's to fill.
			if st.LastApplied() >= dump.LastAppliedID {
				return nil
			}
			return fmt.Errorf("%w: store for %s is live at update %d, cannot install at %d",
				dynamic.ErrUpdateSequence, key, st.LastApplied(), dump.LastAppliedID)
		}
		st, err := NewStore(dump.R, dump.S, key.L, &StoreOptions{
			Algorithm:          Algorithm(key.Algorithm),
			Seed:               key.Seed,
			MaxT:               o.MaxT,
			initialGeneration:  dump.Generation,
			initialLastApplied: dump.LastAppliedID,
		})
		if err != nil {
			return err
		}
		st.st.SetOnGeneration(func(gen uint64) {
			stale := key
			stale.Generation = gen
			reg.EvictOlder(stale)
		})
		if mgr != nil {
			ds, err := mgr.Open(key)
			if err != nil {
				return err
			}
			// Persist the transferred base before taking writes: a
			// crash after the install must recover to the installed
			// state, not to seed data missing the donor's history.
			if err := ds.Snapshot(dump.Generation, dump.LastAppliedID, dump.R, dump.S); err != nil {
				return err
			}
			st.st.SetPersister(ds)
		}
		if err := stores.Adopt(key, st.st); err != nil {
			// A concurrent install (or first update) won the race;
			// re-check whether what landed already covers this dump.
			if live, ok := stores.Lookup(key); ok && live.LastApplied() >= dump.LastAppliedID {
				return nil
			}
			return err
		}
		return nil
	}
	h, err := server.New(server.Config{
		Registry:     reg,
		Stores:       stores,
		InstallStore: installStore,
		MaxT:         o.MaxT,
		Timeout:      o.Timeout,
		Logger:       o.Logger,
		SlowDraw:     o.SlowDraw,
		EnablePprof:  o.EnablePprof,
	})
	if err != nil {
		return nil, err
	}
	return &Server{h: h, reg: reg, stores: stores, wal: mgr}, nil
}

// recoverDataset rebuilds one dynamic store from its persisted state:
// base point sets from the newest snapshot (or the dataset resolver
// when none was ever taken), generation and last-applied update ID
// resumed past the snapshot's, then every logged update after the
// snapshot replayed in ID order. The recovered store is adopted into
// the stores map so the factory never rebuilds this key from seed.
func recoverDataset(mgr *wal.Manager, stores *dynamic.Stores, reg *registry.Registry, key EngineKey, o *ServerOptions) error {
	ds, err := mgr.Open(key)
	if err != nil {
		return err
	}
	snap, ok, err := ds.LoadSnapshot()
	if err != nil {
		return err
	}
	R, S := snap.R, snap.S
	if !ok {
		// No snapshot yet: the log holds every update since the seed
		// base, so recovery starts from the same resolver data the
		// original store was bulk-built over.
		if R, S, err = o.Datasets(key.Dataset); err != nil {
			return err
		}
	}
	st, err := NewStore(R, S, key.L, &StoreOptions{
		Algorithm:          Algorithm(key.Algorithm),
		Seed:               key.Seed,
		MaxT:               o.MaxT,
		initialGeneration:  snap.Generation,
		initialLastApplied: snap.LastID,
	})
	if err != nil {
		return err
	}
	var recs []dynamic.SeqUpdate
	if err := ds.Replay(snap.LastID, func(id uint64, u Update) error {
		recs = append(recs, dynamic.SeqUpdate{ID: id, U: u})
		return nil
	}); err != nil {
		return err
	}
	if err := st.st.Replay(recs); err != nil {
		return err
	}
	// Hooks attach after replay: replayed records must not be
	// re-appended to the log they came from, and no engine can be
	// cached for this key before the store exists.
	st.st.SetOnGeneration(func(gen uint64) {
		stale := key
		stale.Generation = gen
		reg.EvictOlder(stale)
	})
	st.st.SetPersister(ds)
	return stores.Adopt(key, st.st)
}

// shutdownSnapshotTimeout bounds the shutdown snapshots of Close —
// shutdown must terminate even when a disk is wedged.
const shutdownSnapshotTimeout = 30 * time.Second

// Close releases the server's durability resources: every dynamic
// store takes one final snapshot at its current state (so the next
// start replays zero log records — snapshot-on-shutdown bounds
// recovery time), then the write-ahead logs are synced and closed and
// their background flushers stopped. A server without a DataDir has
// nothing to close. The HTTP handler itself holds no resources — stop
// accepting requests before Close, or late updates fail their
// write-ahead append.
func (s *Server) Close() error {
	if s.wal == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownSnapshotTimeout)
	defer cancel()
	var firstErr error
	s.stores.Each(func(key EngineKey, st *dynamic.Store) {
		if err := st.SnapshotNow(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("srj: snapshot on shutdown for %s: %w", key, err)
		}
	})
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// BuiltinDatasets returns the dataset resolver NewServer uses by
// default: the built-in generators (DatasetNames) with size points
// per side, R seeded with seed and S with seed+1. size <= 0 means
// 100_000; seed 0 means 1. srjserver layers its -load files on top of
// this resolver so flags mean the same thing with and without files.
func BuiltinDatasets(size int, seed uint64) func(name string) (R, S []Point, err error) {
	if size <= 0 {
		size = 100_000
	}
	if seed == 0 {
		seed = 1
	}
	return func(name string) ([]Point, []Point, error) {
		R, err := Generate(name, size, seed)
		if err != nil {
			return nil, nil, err
		}
		S, err := Generate(name, size, seed+1)
		if err != nil {
			return nil, nil, err
		}
		return R, S, nil
	}
}

// maxCachedDatasets bounds the dataset memo of NewServer: two point
// sets per name can be large (~48*n bytes), and the memo sits outside
// the engine MemoryBudget, so only this many names stay resolved.
const maxCachedDatasets = 2

// memoizeDatasets wraps a dataset resolver with a small LRU memo.
// Concurrent resolutions of one name coalesce onto a single call.
func memoizeDatasets(resolve func(name string) (R, S []Point, err error)) func(name string) (R, S []Point, err error) {
	type entry struct {
		once sync.Once
		R, S []Point
		err  error
	}
	var (
		mu    sync.Mutex
		cache = map[string]*entry{}
		order []string // least recently used first
	)
	touch := func(name string) {
		for i, n := range order {
			if n == name {
				order = append(append(order[:i:i], order[i+1:]...), name)
				return
			}
		}
		order = append(order, name)
	}
	return func(name string) ([]Point, []Point, error) {
		mu.Lock()
		e, ok := cache[name]
		if !ok {
			e = &entry{}
			cache[name] = e
			for len(cache) > maxCachedDatasets {
				delete(cache, order[0])
				order = order[1:]
			}
		}
		touch(name)
		mu.Unlock()
		e.once.Do(func() { e.R, e.S, e.err = resolve(name) })
		if e.err != nil {
			mu.Lock()
			if cache[name] == e {
				delete(cache, name)
				// Drop the name from the LRU order too, or a stream
				// of distinct bad names would grow it without bound.
				for i, n := range order {
					if n == name {
						order = append(order[:i:i], order[i+1:]...)
						break
					}
				}
			}
			mu.Unlock()
			return nil, nil, e.err
		}
		return e.R, e.S, nil
	}
}

// knownAlgorithm reports whether name selects one of Algorithms.
func knownAlgorithm(name string) bool {
	for _, a := range Algorithms() {
		if string(a) == name {
			return true
		}
	}
	return false
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.h.ServeHTTP(w, r) }

// Router shards engine keys across a fleet of srjserver backends by
// consistent hashing: each (dataset, l, algorithm, seed) key has one
// home backend (so the fleet's aggregate memory budget scales
// horizontally), transport failures fail over along the ring, and
// Bind turns the router into a Source exactly like Client.Bind —
// callers cannot tell a sharded fleet from a single engine. With
// RouterOptions.ReadReplicas > 1, reads spread across the first k
// healthy ring nodes; AddBackend/RemoveBackend resize the ring on a
// live router (state transfer included). Construct with NewRouter;
// Close stops the background health prober. See RouterOptions for
// knobs, cmd/srjrouter for the standalone proxy.
type Router = router.Router

// RouterOptions configures NewRouter: virtual nodes per backend,
// read replicas per key (ReadReplicas — spread draws across the
// first k healthy ring nodes while keeping seeded draws
// byte-identical), health-probe cadence, and the shared http.Client.
type RouterOptions = router.Options

// RouterStats snapshots a Router's routing state: per-backend health
// and counters plus per-key shard assignments.
type RouterStats = router.Stats

// BackendStats is one backend's slice of RouterStats.
type BackendStats = router.BackendStats

// NewRouter returns a Router over the given srjserver base URLs (e.g.
// "http://shard0:8080"). The zero RouterOptions serves: 64 virtual
// nodes per backend, a 5s health-probe interval, http.DefaultClient.
func NewRouter(backends []string, opts RouterOptions) (*Router, error) {
	return router.New(backends, opts)
}

// Warm builds (or touches) the engine for key so the first client
// request pays no preprocessing.
func (s *Server) Warm(ctx context.Context, key EngineKey) error {
	_, err := s.reg.Get(ctx, key)
	return err
}

// Apply routes one update batch to key's dynamic store — creating the
// store on first use — exactly as POST /v1/update does, including the
// eviction of engines the generation bump made stale. For embedders;
// remote clients use Client.Apply.
func (s *Server) Apply(ctx context.Context, key EngineKey, u Update) (uint64, error) {
	key.Algorithm = server.NormalizeAlgorithm(key.Algorithm)
	gen, err := s.stores.Apply(ctx, key, u)
	if err != nil {
		return gen, err
	}
	key.Generation = gen
	s.reg.EvictOlder(key)
	return gen, nil
}

// RegistryStats snapshots the engine cache counters.
func (s *Server) RegistryStats() RegistryStats { return s.reg.Stats() }

// Engines lists the resident engines, most recently used first.
func (s *Server) Engines() []EngineInfo { return s.reg.Entries() }
